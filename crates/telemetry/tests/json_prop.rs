//! Property tests for the JSON model: `parse ∘ serialize` must be the
//! identity on every value the model can hold (both the compact and the
//! pretty form), for arbitrarily nasty strings (astral-plane characters
//! that serialize through surrogate pairs, embedded controls), floats
//! that need shortest-roundtrip printing, full-precision integers and
//! nesting up to the parser's depth bound.
//!
//! Failures replay with `PMACC_PROP_SEED=<seed> PMACC_PROP_CASES=1`.

use pmacc_prop::{check, Gen};
use pmacc_telemetry::Json;

/// A random Unicode scalar, biased toward the troublesome ranges:
/// controls (must escape), the BMP boundary, and astral-plane characters
/// (must round-trip through `\uXXXX` surrogate pairs when escaped and as
/// raw UTF-8 otherwise).
fn arb_char(g: &mut Gen) -> char {
    match g.weighted(&[3, 2, 1, 1, 1]) {
        0 => char::from(g.gen_range(0x20u32..0x7F) as u8),
        1 => char::from(g.gen_range(0u32..0x20) as u8), // controls
        2 => char::from_u32(g.gen_range(0x80u32..0xD800)).expect("below surrogates"),
        3 => char::from_u32(g.gen_range(0xE000u32..0x1_0000)).expect("above surrogates"),
        _ => char::from_u32(g.gen_range(0x1_0000u32..0x11_0000))
            .unwrap_or('\u{10FFFF}'), // astral plane (surrogate pairs)
    }
}

fn arb_string(g: &mut Gen) -> String {
    let n = g.gen_range(0usize..12);
    (0..n).map(|_| arb_char(g)).collect()
}

/// A finite float, biased toward shortest-roundtrip edge cases.
fn arb_finite_f64(g: &mut Gen) -> f64 {
    match g.weighted(&[3, 2, 2, 1, 1]) {
        0 => g.f64_range(-1000.0..1000.0),
        1 => g.choose(&[0.1, 1.0 / 3.0, 98.5, 5e-324, f64::MIN_POSITIVE]),
        2 => g.choose(&[1e300, -2.5e-10, f64::MAX, f64::EPSILON, -0.0, 0.0]),
        3 => (g.gen::<u64>() as i64) as f64,
        _ => f64::from_bits(g.gen::<u64>() & !(0x7FFu64 << 52)), // subnormal-ish
    }
}

/// A random `Json` value of bounded depth. Leaves only at `depth == 0`.
fn arb_json(g: &mut Gen, depth: usize) -> Json {
    let leaf_only = depth == 0;
    let weights: &[u32] = if leaf_only {
        &[1, 1, 2, 2, 2, 0, 0]
    } else {
        &[1, 1, 2, 2, 2, 2, 2]
    };
    match g.weighted(weights) {
        0 => Json::Null,
        1 => Json::Bool(g.gen_bool(0.5)),
        2 => Json::Int(g.gen::<u64>() as i64),
        3 => Json::Num(arb_finite_f64(g)),
        4 => Json::Str(arb_string(g)),
        5 => {
            let n = g.gen_range(0usize..4);
            Json::Arr((0..n).map(|_| arb_json(g, depth - 1)).collect())
        }
        _ => {
            let n = g.gen_range(0usize..4);
            Json::Obj(
                (0..n)
                    .map(|_| (arb_string(g), arb_json(g, depth - 1)))
                    .collect(),
            )
        }
    }
}

#[test]
fn parse_of_serialize_is_identity() {
    check("json/parse-serialize-roundtrip", |g| {
        let v = arb_json(g, 4);
        let compact = v.to_compact();
        let pretty = v.to_pretty();
        assert_eq!(Json::parse(&compact).unwrap(), v, "compact: {compact}");
        assert_eq!(Json::parse(&pretty).unwrap(), v, "pretty: {pretty}");
    });
}

#[test]
fn floats_survive_with_exact_bits() {
    check("json/float-bits-roundtrip", |g| {
        let x = arb_finite_f64(g);
        let s = Json::Num(x).to_compact();
        let back = Json::parse(&s).unwrap().as_f64().unwrap();
        assert_eq!(back.to_bits(), x.to_bits(), "{x:?} via {s}");
    });
}

#[test]
fn escaped_strings_roundtrip_including_surrogate_pairs() {
    check("json/string-escape-roundtrip", |g| {
        let s = arb_string(g);
        // The serializer writes astral characters raw; also exercise the
        // parser's `\uXXXX` surrogate-pair path explicitly.
        let mut escaped = String::from('"');
        for c in s.chars() {
            // Controls/quotes/backslashes must escape; astral-plane
            // characters escape half the time (exercising the parser's
            // surrogate-pair path) and go out raw otherwise.
            let must_escape = (c as u32) < 0x20 || c == '"' || c == '\\';
            if must_escape || ((c as u32) > 0xFFFF && g.gen_bool(0.5)) {
                for u in c.encode_utf16(&mut [0u16; 2]) {
                    escaped.push_str(&format!("\\u{u:04x}"));
                }
            } else {
                escaped.push(c);
            }
        }
        escaped.push('"');
        assert_eq!(Json::parse(&escaped).unwrap(), Json::Str(s.clone()));
        assert_eq!(Json::parse(&Json::Str(s.clone()).to_compact()).unwrap(), Json::Str(s));
    });
}

#[test]
fn depth_bound_accepts_at_limit_and_rejects_beyond() {
    // The parser bounds recursion at a fixed depth: a document nested just
    // short of it parses, one past it is rejected rather than overflowing
    // the stack.
    let nest = |n: usize| "[".repeat(n) + &"]".repeat(n);
    assert!(Json::parse(&nest(100)).is_ok());
    assert!(Json::parse(&nest(1000)).is_err());
    check("json/depth-probe", |g| {
        let n = g.gen_range(1usize..64);
        let v = Json::parse(&nest(n)).unwrap();
        assert_eq!(Json::parse(&v.to_compact()).unwrap(), v);
    });
}
