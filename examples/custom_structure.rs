//! Bring your own data structure: record a trace from a custom persistent
//! structure (the extension queue and skiplist), run it on the simulated
//! machine under the transaction cache, crash it, and verify recovery.
//!
//! This is the workflow for evaluating how *your* persistent structure
//! behaves on the paper's accelerator.
//!
//! ```text
//! cargo run --release -p pmacc --example custom_structure
//! ```

use std::error::Error;

use pmacc::recovery::{check_recovery, recover};
use pmacc::{RunConfig, System};
use pmacc_types::{MachineConfig, SchemeKind};
use pmacc_workloads::{MemSession, PersistentQueue, SkipList};

fn main() -> Result<(), Box<dyn Error>> {
    // 1. Execute the structures functionally while recording a trace.
    let mut session = MemSession::new(2024);
    let queue = PersistentQueue::create(&mut session);
    let index = SkipList::create(&mut session);
    session.start_recording();

    // A tiny producer/indexer program: enqueue work items, index every
    // third one by key, retire the oldest items as we go.
    for item in 0..300u64 {
        queue.enqueue(&mut session, item);
        if item % 3 == 0 {
            index.insert(&mut session, item, item * 7);
        }
        if item % 5 == 4 {
            let _ = queue.dequeue(&mut session);
        }
    }
    queue.check(&session).map_err(Box::<dyn Error>::from)?;
    index.check_invariants(&session).map_err(Box::<dyn Error>::from)?;

    let (trace, initial, _) = session.finish();
    println!(
        "recorded {} ops in {} transactions (write-set p99: {} stores)",
        trace.op_count(),
        trace.transactions(),
        {
            let mut s = trace.tx_store_counts();
            s.sort_unstable();
            s[(s.len() * 99 / 100).min(s.len() - 1)]
        }
    );

    // 2. Run it on the transaction-cache machine (one core).
    let mut machine = MachineConfig::dac17_scaled().with_scheme(SchemeKind::TxCache);
    machine.cores = 1;
    let mut system = System::new(
        machine.clone(),
        vec![trace.clone()],
        &initial,
        &RunConfig::default(),
    )?;
    let report = system.run()?;
    println!(
        "ran in {} cycles: IPC {:.3}, {} NVM writes, {} dropped LLC write-backs",
        report.cycles,
        report.ipc(),
        report.nvm_write_traffic(),
        report.dropped_llc_writes
    );

    // 3. Crash at one third of the run and verify the recovered image.
    let crash_at = report.cycles / 3;
    let mut system = System::new(machine, vec![trace], &initial, &RunConfig::default())?;
    system.run_until(crash_at)?;
    let state = system.crash_state();
    let recovered = recover(&state);
    check_recovery(&state, &recovered).map_err(Box::<dyn Error>::from)?;
    queue
        .check_image(&|a| recovered.read_word(a.word()))
        .map_err(Box::<dyn Error>::from)?;
    println!(
        "crashed at cycle {crash_at} with {} committed transactions: \
         recovery is transaction-atomic and the queue is intact",
        state.journal.len()
    );
    Ok(())
}
