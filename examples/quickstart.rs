//! Quickstart: build the paper's machine, run one workload under the
//! transaction-cache scheme, and print the headline metrics.
//!
//! ```text
//! cargo run --release -p pmacc --example quickstart
//! ```

use std::error::Error;

use pmacc::{RunConfig, System};
use pmacc_cpu::StallKind;
use pmacc_types::{MachineConfig, SchemeKind, WriteCause};
use pmacc_workloads::{WorkloadKind, WorkloadParams};

fn main() -> Result<(), Box<dyn Error>> {
    // The Table 2 machine, capacity-scaled to match short simulated runs
    // (use MachineConfig::dac17() for the full-size caches).
    let machine = MachineConfig::dac17_scaled().with_scheme(SchemeKind::TxCache);

    // One hashtable instance per core, 2 000 search/insert transactions
    // each, deterministic under the seed.
    let mut params = WorkloadParams::evaluation(7);
    params.num_ops = 2_000;

    let mut system = System::for_workload(
        machine,
        WorkloadKind::Hashtable,
        &params,
        &RunConfig::default(),
    )?;
    let report = system.run()?;

    println!("scheme               : {}", report.scheme);
    println!("cycles               : {}", report.cycles);
    println!("committed tx         : {}", report.total_committed());
    println!("IPC                  : {:.4}", report.ipc());
    println!("tx throughput        : {:.6} tx/cycle", report.throughput());
    println!("LLC miss rate        : {:.2}%", report.llc_miss_rate() * 100.0);
    println!(
        "NVM writes           : {} ({} from the transaction cache)",
        report.nvm_write_traffic(),
        report.nvm_writes_by(WriteCause::TxCacheDrain)
    );
    println!(
        "persistent load lat. : {:.1} cycles",
        report.persistent_load_latency()
    );
    println!(
        "TC-full stalls       : {:.4}% of time, {} COW overflows",
        report.stall_fraction(StallKind::TxCacheFull) * 100.0,
        report.tc_overflows()
    );
    println!(
        "LLC evictions dropped: {} (the §3 'dropped writes' path)",
        report.dropped_llc_writes
    );
    Ok(())
}
