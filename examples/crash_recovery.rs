//! Crash a machine mid-run and watch each scheme recover (or fail to).
//!
//! Runs the same red-black-tree workload under all four schemes, cuts the
//! power at the same fraction of execution, runs the scheme's recovery
//! procedure, and checks the result against the committed-transaction
//! oracle — demonstrating the multi-versioning + write-order-control
//! guarantee of §3, and its absence in the Optimal baseline.
//!
//! ```text
//! cargo run --release -p pmacc --example crash_recovery
//! ```

use std::error::Error;

use pmacc::recovery::{check_recovery, recover};
use pmacc::{RunConfig, System};
use pmacc_types::{MachineConfig, SchemeKind};
use pmacc_workloads::{WorkloadKind, WorkloadParams};

fn main() -> Result<(), Box<dyn Error>> {
    let params = WorkloadParams {
        num_ops: 400,
        setup_items: 2_000,
        key_space: 4_000,
        insert_ratio: 80,
        seed: 99,
        sharing: 0,
    };

    for scheme in [
        SchemeKind::Sp,
        SchemeKind::TxCache,
        SchemeKind::NvLlc,
        SchemeKind::Optimal,
    ] {
        let machine = MachineConfig::small().with_scheme(scheme);
        // Measure the full run length first, then crash at 40% of it.
        let total = {
            let mut sys =
                System::for_workload(machine.clone(), WorkloadKind::Rbtree, &params, &RunConfig::default())?;
            sys.run()?.cycles
        };
        let crash_at = (total * 2) / 5;

        let mut sys =
            System::for_workload(machine, WorkloadKind::Rbtree, &params, &RunConfig::default())?;
        sys.run_until(crash_at)?;
        let committed_at_crash: u64 = sys.journal().len() as u64;
        let state = sys.crash_state();
        let recovered = recover(&state);

        print!(
            "{scheme:>8}: crashed at cycle {crash_at} with {committed_at_crash} committed tx -> "
        );
        match check_recovery(&state, &recovered) {
            Ok(()) => println!("recovered consistently (all committed tx present, no torn tx)"),
            Err(e) => println!("INCONSISTENT: {e}"),
        }
    }
    println!(
        "\nThe three persistence schemes recover every committed transaction \
         atomically;\nOptimal (no persistence support) is expected to be inconsistent."
    );
    Ok(())
}
