//! Compare all four persistence schemes on one workload — a miniature of
//! the paper's Figures 6–10.
//!
//! ```text
//! cargo run --release -p pmacc --example scheme_comparison [workload]
//! ```
//!
//! `workload` is one of `graph`, `rbtree`, `sps`, `btree`, `hashtable`
//! (default `btree`).

use std::error::Error;

use pmacc::{RunConfig, RunReport, System};
use pmacc_types::{MachineConfig, SchemeKind};
use pmacc_workloads::{WorkloadKind, WorkloadParams};

fn main() -> Result<(), Box<dyn Error>> {
    let kind: WorkloadKind = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(WorkloadKind::Btree);

    let mut params = WorkloadParams::evaluation(11);
    params.num_ops = 2_000;

    println!("workload: {kind} — {}", kind.description());
    println!(
        "{:>8} | {:>9} | {:>10} | {:>9} | {:>10} | {:>10}",
        "scheme", "IPC", "tx/kcycle", "LLC miss", "NVM writes", "p-load lat"
    );

    let mut optimal: Option<RunReport> = None;
    for scheme in [
        SchemeKind::Optimal,
        SchemeKind::Sp,
        SchemeKind::TxCache,
        SchemeKind::NvLlc,
    ] {
        let machine = MachineConfig::dac17_scaled().with_scheme(scheme);
        let mut sys = System::for_workload(machine, kind, &params, &RunConfig::default())?;
        let r = sys.run()?;
        println!(
            "{:>8} | {:>9.4} | {:>10.4} | {:>8.2}% | {:>10} | {:>10.1}",
            scheme.to_string(),
            r.ipc(),
            r.throughput() * 1000.0,
            r.llc_miss_rate() * 100.0,
            r.nvm_write_traffic(),
            r.persistent_load_latency(),
        );
        if scheme == SchemeKind::Optimal {
            optimal = Some(r);
        } else if let Some(base) = &optimal {
            println!(
                "{:>8} | {:>9.3} | {:>10.3} | {:>9.3} | {:>10.3} | {:>10.3}  (vs optimal)",
                "",
                r.ipc() / base.ipc(),
                r.throughput() / base.throughput(),
                r.llc_miss_rate() / base.llc_miss_rate(),
                r.nvm_write_traffic() as f64 / base.nvm_write_traffic().max(1) as f64,
                r.persistent_load_latency() / base.persistent_load_latency(),
            );
        }
    }
    Ok(())
}
