//! Size the transaction cache for a workload — the §3 claim that "the
//! capacity of the transaction cache can be flexibly configured based on
//! the transaction sizes of the processor's target applications".
//!
//! Sweeps the per-core TC capacity on the write-heavy `sps` benchmark and
//! reports where stalls and copy-on-write overflows disappear. Every
//! sweep point is an independent simulation, so the sweep fans out over
//! the `pmacc_bench::pool` worker pool (`PMACC_JOBS` bounds the worker
//! count); results print in size order regardless of completion order.
//!
//! ```text
//! cargo run --release -p pmacc-bench --example txcache_sizing
//! ```

use std::error::Error;

use pmacc::{RunConfig, RunReport, System};
use pmacc_bench::pool::{run_jobs, Job};
use pmacc_cpu::StallKind;
use pmacc_types::{MachineConfig, SchemeKind, SimError};
use pmacc_workloads::{WorkloadKind, WorkloadParams};

fn main() -> Result<(), Box<dyn Error>> {
    let mut params = WorkloadParams::evaluation(3);
    params.num_ops = 2_000;

    let sizes = [256u64, 512, 1024, 2048, 4096, 8192];
    let jobs: Vec<Job<Result<RunReport, SimError>>> = sizes
        .iter()
        .map(|&size| {
            Job::new(format!("tc {size} B/sps"), move || {
                let mut machine =
                    MachineConfig::dac17_scaled().with_scheme(SchemeKind::TxCache);
                machine.txcache.size_bytes = size;
                System::for_workload(machine, WorkloadKind::Sps, &params, &RunConfig::default())?
                    .run()
            })
        })
        .collect();
    let reports = run_jobs(jobs, pmacc_bench::pool::default_jobs(), false)?;

    println!(
        "{:>8} | {:>9} | {:>11} | {:>9} | {:>12}",
        "TC size", "IPC", "full stalls", "overflows", "drain writes"
    );
    for (size, r) in sizes.iter().zip(reports) {
        let r = r?;
        println!(
            "{:>6} B | {:>9.4} | {:>10.4}% | {:>9} | {:>12}",
            size,
            r.ipc(),
            r.stall_fraction(StallKind::TxCacheFull) * 100.0,
            r.tc_overflows(),
            r.nvm_writes_by(pmacc_types::WriteCause::TxCacheDrain),
        );
    }
    println!("\nThe paper's 4 KB/core point leaves the CPU essentially stall-free (§5.2).");
    Ok(())
}
