//! Integration-test host crate (tests live in `tests/tests`) plus the
//! shared test-support helpers those tests use.

/// The legacy fixed crash-point spread: a handful of hand-picked cycles
/// including awkward early/late ones and one point after quiescence.
///
/// This is the coarse baseline the `crashgrid` campaign engine is
/// measured against (its dense schedules cover ≥ 50× as many points per
/// cell); the end-to-end crash tests still use it as a fast smoke
/// spread.
#[must_use]
pub fn crash_points(total: u64) -> Vec<u64> {
    vec![
        1,
        total / 7,
        total / 3,
        total / 2,
        (total * 2) / 3,
        (total * 9) / 10,
        total + 1_000_000, // after quiescence
    ]
}

#[cfg(test)]
mod tests {
    #[test]
    fn crash_points_cover_early_late_and_quiescent() {
        let pts = super::crash_points(700);
        assert_eq!(pts.len(), 7);
        assert_eq!(pts[0], 1);
        assert!(pts.last().copied().unwrap() > 700, "one point past quiescence");
    }
}
