//! The paper's introduction scenario, end to end: inserting nodes into a
//! persistent linked list, then crashing. Without persistence support the
//! reordered write-backs leave dangling pointers; the transaction cache
//! keeps the structure consistent at every crash point.

use pmacc::recovery::recover;
use pmacc::{RunConfig, System};
use pmacc_types::{MachineConfig, SchemeKind};
use pmacc_workloads::{MemSession, PersistentQueue};

fn queue_setup(enqueues: u64) -> (pmacc_cpu::Trace, Vec<(pmacc_types::WordAddr, u64)>, PersistentQueue) {
    let mut s = MemSession::new(5);
    let q = PersistentQueue::create(&mut s);
    s.start_recording();
    for v in 0..enqueues {
        q.enqueue(&mut s, v + 1);
        if v % 3 == 2 {
            let _ = q.dequeue(&mut s);
        }
    }
    let (trace, initial, _) = s.finish();
    (trace, initial, q)
}

fn crash_points(total: u64, n: u64) -> impl Iterator<Item = u64> {
    (1..=n).map(move |i| i * total / (n + 1))
}

fn machine(scheme: SchemeKind) -> MachineConfig {
    let mut cfg = MachineConfig::small().with_scheme(scheme);
    cfg.cores = 1;
    cfg
}

/// A machine with enough cache pressure that write-backs actually reach
/// the NVM out of order — the paper's reordering precondition. Without
/// evictions, Optimal trivially "survives" crashes by losing everything.
fn pressured(scheme: SchemeKind) -> MachineConfig {
    let mut cfg = machine(scheme);
    cfg.l1 = pmacc_types::CacheConfig::new(1024, 2, 0.5); // 8 sets x 2
    cfg.l2 = pmacc_types::CacheConfig::new(2048, 2, 4.5);
    cfg.llc = pmacc_types::CacheConfig::new(4096, 2, 10.0); // 64 lines
    cfg
}

#[test]
fn tc_never_leaves_a_dangling_pointer() {
    let (trace, initial, q) = queue_setup(120);
    let total = {
        let mut sys =
            System::new(machine(SchemeKind::TxCache), vec![trace.clone()], &initial, &RunConfig::default())
                .unwrap();
        sys.run().unwrap().cycles
    };
    for crash in crash_points(total, 24) {
        let mut sys =
            System::new(machine(SchemeKind::TxCache), vec![trace.clone()], &initial, &RunConfig::default())
                .unwrap();
        sys.run_until(crash).unwrap();
        let state = sys.crash_state();
        let img = recover(&state);
        q.check_image(&|a| img.read_word(a.word()))
            .unwrap_or_else(|e| panic!("crash@{crash}: recovered list corrupt: {e}"));
    }
}

#[test]
fn optimal_tears_the_list_at_some_crash_point() {
    let (trace, initial, q) = queue_setup(400);
    let total = {
        let mut sys = System::new(
            pressured(SchemeKind::Optimal),
            vec![trace.clone()],
            &initial,
            &RunConfig::default(),
        )
        .unwrap();
        sys.run().unwrap().cycles
    };
    let mut torn = false;
    for crash in crash_points(total, 60) {
        let mut sys = System::new(
            pressured(SchemeKind::Optimal),
            vec![trace.clone()],
            &initial,
            &RunConfig::default(),
        )
        .unwrap();
        sys.run_until(crash).unwrap();
        let state = sys.crash_state();
        let img = recover(&state);
        if q.check_image(&|a| img.read_word(a.word())).is_err() {
            torn = true;
            break;
        }
    }
    assert!(
        torn,
        "without persistence support, some crash point must corrupt the list"
    );
}

#[test]
fn tc_protects_the_list_even_under_cache_pressure() {
    // The same pressured machine that tears Optimal: the TC scheme drops
    // the reordered write-backs and persists through its own FIFO.
    let (trace, initial, q) = queue_setup(400);
    let total = {
        let mut sys = System::new(
            pressured(SchemeKind::TxCache),
            vec![trace.clone()],
            &initial,
            &RunConfig::default(),
        )
        .unwrap();
        sys.run().unwrap().cycles
    };
    for crash in crash_points(total, 20) {
        let mut sys = System::new(
            pressured(SchemeKind::TxCache),
            vec![trace.clone()],
            &initial,
            &RunConfig::default(),
        )
        .unwrap();
        sys.run_until(crash).unwrap();
        let state = sys.crash_state();
        let img = recover(&state);
        q.check_image(&|a| img.read_word(a.word()))
            .unwrap_or_else(|e| panic!("crash@{crash}: {e}"));
    }
}

#[test]
fn sp_and_nvllc_also_protect_the_list() {
    let (trace, initial, q) = queue_setup(60);
    for scheme in [SchemeKind::Sp, SchemeKind::NvLlc] {
        let total = {
            let mut sys =
                System::new(machine(scheme), vec![trace.clone()], &initial, &RunConfig::default())
                    .unwrap();
            sys.run().unwrap().cycles
        };
        for crash in crash_points(total, 8) {
            let mut sys =
                System::new(machine(scheme), vec![trace.clone()], &initial, &RunConfig::default())
                    .unwrap();
            sys.run_until(crash).unwrap();
            let state = sys.crash_state();
            let img = recover(&state);
            q.check_image(&|a| img.read_word(a.word()))
                .unwrap_or_else(|e| panic!("{scheme} crash@{crash}: {e}"));
        }
    }
}
