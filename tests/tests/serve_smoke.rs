//! End-to-end checks of the open-system service benchmark: the quick
//! campaign must ramp every scheme into saturation, attribute latency
//! tails, validate against its own schema, and emit byte-identical
//! reports at any worker count.

use pmacc_bench::pool::Options;
use pmacc_bench::serve::{parse_report, run_serve, ArrivalKind, ServeCampaignConfig, SERVE_SCHEMA};
use pmacc_telemetry::Json;
use pmacc_types::SchemeKind;

fn opts(jobs: usize) -> Options {
    Options {
        jobs,
        progress: false,
    }
}

/// A trimmed campaign (2 schemes, 2 rates) for the invariance check.
fn small_cfg(seed: u64) -> ServeCampaignConfig {
    let mut cfg = ServeCampaignConfig::quick(seed);
    cfg.schemes = vec![SchemeKind::TxCache, SchemeKind::Sp];
    cfg.load_fractions = vec![0.5, 1.3];
    cfg
}

#[test]
fn quick_campaign_saturates_every_scheme() {
    let cfg = ServeCampaignConfig::quick(42);
    let report = run_serve(&cfg, &opts(4)).expect("campaign runs");

    assert_eq!(report.curves.len(), SchemeKind::all().len());
    assert!(report.mean_ops_per_request >= 3.0, "begin + work + end");
    for curve in &report.curves {
        assert!(
            curve.closed_loop_rate > 0.0,
            "{}: calibration found no capacity",
            curve.scheme
        );
        assert_eq!(curve.points.len(), cfg.load_fractions.len());
        // Offered rates follow the configured ladder.
        for (p, frac) in curve.points.iter().zip(&cfg.load_fractions) {
            assert!(
                (p.offered - frac * curve.closed_loop_rate).abs() < 1e-9,
                "{}: ladder rung mismatch",
                curve.scheme
            );
            assert_eq!(
                p.latency.count(),
                p.completed,
                "{}: one latency sample per completed request",
                curve.scheme
            );
        }
        // Light load is sustained; the overload rung is not: it must
        // shed or miss the goodput bar, so the ceiling sits inside the
        // ladder rather than at its top.
        assert!(curve.points[0].sustained(), "{}", curve.scheme);
        assert!(
            !curve.points.last().unwrap().sustained(),
            "{}: 1.3x closed-loop rate cannot be sustained",
            curve.scheme
        );
        let ceiling = curve.ceiling();
        assert!(
            ceiling > 0.0 && ceiling < curve.points.last().unwrap().offered,
            "{}: ceiling {ceiling} must fall inside the ladder",
            curve.scheme
        );
        // Latency grows with load: p99 at the overload rung dominates
        // the light-load rung.
        let light = curve.points[0].latency.percentile(0.99);
        let heavy = curve.points.last().unwrap().latency.percentile(0.99);
        assert!(
            heavy > light,
            "{}: overload p99 {heavy} <= light-load p99 {light}",
            curve.scheme
        );
    }

    // The document round-trips through the schema validator.
    let doc = Json::parse(&report.to_json().to_pretty()).expect("valid JSON");
    assert_eq!(doc.get("schema").and_then(Json::as_str), Some(SERVE_SCHEMA));
    let summary = parse_report(&doc).expect("report validates");
    assert_eq!(summary.schemes, report.curves.len());
    assert_eq!(summary.total_completed, report.total_completed());
    assert_eq!(summary.total_shed, report.total_shed());
    assert!(summary.total_shed > 0, "overload rungs must shed");
}

#[test]
fn serve_report_bytes_are_invariant_to_worker_count() {
    let serial = run_serve(&small_cfg(7), &opts(1)).expect("jobs=1 runs");
    let fanned = run_serve(&small_cfg(7), &opts(4)).expect("jobs=4 runs");
    assert_eq!(
        serial.to_json().to_pretty(),
        fanned.to_json().to_pretty(),
        "report must be byte-identical at --jobs 1 vs --jobs 4"
    );
}

#[test]
fn arrival_processes_produce_distinct_but_deterministic_campaigns() {
    let mut renders = Vec::new();
    for kind in ArrivalKind::all() {
        let mut cfg = small_cfg(11);
        cfg.arrival = kind;
        cfg.schemes = vec![SchemeKind::TxCache];
        cfg.load_fractions = vec![0.7];
        let a = run_serve(&cfg, &opts(2)).expect("campaign runs");
        let b = run_serve(&cfg, &opts(3)).expect("campaign reruns");
        assert_eq!(
            a.to_json().to_pretty(),
            b.to_json().to_pretty(),
            "{kind}: campaign must be reproducible"
        );
        renders.push(a.to_json().to_pretty());
    }
    assert_ne!(renders[0], renders[1], "poisson vs bursty must differ");
    assert_ne!(renders[0], renders[2], "poisson vs diurnal must differ");
}
