//! Cross-core sharing: coherence traffic, conflict serialization and
//! crash consistency when cores contend for shared-pool lines.
//!
//! The sharing knob (`WorkloadParams::sharing`) remaps a fraction of
//! each core's persistent-heap lines into the shared window, where the
//! per-core address striding does not apply. These tests pin the three
//! system-level consequences: the MESI layer stays inert at fraction 0,
//! produces traffic and transaction conflicts at fraction > 0, and
//! recovery stays consistent while transactions from different cores
//! race on the same lines.

use pmacc::recovery::{check_recovery, recover};
use pmacc::{RunConfig, System};
use pmacc_cpu::{Op, Trace};
use pmacc_types::{layout, MachineConfig, SchemeKind};
use pmacc_workloads::{WorkloadKind, WorkloadParams};

fn build(scheme: SchemeKind, sharing: u8, num_ops: usize) -> System {
    let mut m = MachineConfig::small().with_scheme(scheme);
    m.cores = 2;
    let mut p = WorkloadParams::tiny(11);
    p.num_ops = num_ops;
    p.sharing = sharing;
    // The hashtable spans enough distinct heap lines that a 4/8 fraction
    // puts a meaningful set of each core's lines into the 64-slot pool
    // (tiny sps fits in two lines — nothing to contend on).
    System::for_workload(m, WorkloadKind::Hashtable, &p, &RunConfig::default())
        .expect("system builds")
}

#[test]
fn sharing_zero_keeps_the_coherence_layer_inert() {
    for scheme in SchemeKind::all() {
        let mut sys = build(scheme, 0, 50);
        let r = sys.run().expect("run");
        let c = &r.hierarchy.coherence;
        for (name, v) in [
            ("bus_upgrades", c.bus_upgrades.value()),
            ("remote_invalidations", c.remote_invalidations.value()),
            ("interventions", c.interventions.value()),
            ("downgrades", c.downgrades.value()),
            ("shared_fills", c.shared_fills.value()),
            (
                "dirty_persistent_invalidations",
                c.dirty_persistent_invalidations.value(),
            ),
        ] {
            assert_eq!(v, 0, "{scheme}: {name} must be zero on disjoint cores");
        }
        let conflicts: u64 = r.cores.iter().map(|c| c.tx_conflicts.value()).sum();
        assert_eq!(conflicts, 0, "{scheme}: no conflicts without sharing");
    }
}

#[test]
fn sharing_produces_coherence_traffic() {
    let mut sys = build(SchemeKind::TxCache, 4, 400);
    let r = sys.run().expect("run");
    let c = &r.hierarchy.coherence;
    assert!(
        c.remote_invalidations.value() > 0,
        "contended stores must invalidate remote copies"
    );
    assert!(
        c.shared_fills.value() > 0,
        "contended loads must fill in Shared state"
    );
}

/// Two cores whose transactions store to the *same* shared-window lines:
/// the dense-contention case workload traces only brush against. Every
/// transaction must serialize behind the remote in-flight writer without
/// deadlocking, and the whole trace still commits.
fn conflicting_system(scheme: SchemeKind, txs: u64) -> System {
    let shared = layout::shared_pool_base();
    let mut m = MachineConfig::small().with_scheme(scheme);
    m.cores = 2;
    let mk = |core: u64| {
        let mut t = Trace::new();
        for i in 0..txs {
            t.push(Op::TxBegin);
            t.push(Op::store(shared, core * 1_000_000 + i));
            // Longer than a core-step batch, so the event engine's batch
            // boundaries land *inside* the transaction and remote cores
            // observe it holding the shared line.
            t.push(Op::Compute(400));
            t.push(Op::store(shared.offset(64), core * 1_000_000 + i));
            t.push(Op::TxEnd);
        }
        t
    };
    System::new(m, vec![mk(1), mk(2)], &[], &RunConfig::default()).expect("system builds")
}

#[test]
fn conflicting_transactions_serialize_without_deadlock() {
    for scheme in SchemeKind::all() {
        let mut sys = conflicting_system(scheme, 40);
        let r = sys.run().expect("conflicting cores must not deadlock");
        assert_eq!(r.total_committed(), 80, "{scheme}: every tx commits");
        let conflicts: u64 = r.cores.iter().map(|c| c.tx_conflicts.value()).sum();
        if scheme == SchemeKind::Sp {
            // SP defers in-place data stores into its private redo log
            // until just before TxEnd, so a remote core almost never
            // observes the shared line inside an open transaction — it
            // has no hardware conflict detection to offer. That blind
            // spot is exactly why SP is the expected-inconsistent
            // control in the sharing crash campaign.
            continue;
        }
        assert!(
            conflicts > 0,
            "{scheme}: same-line transactions must hit the conflict serializer"
        );
    }
}

#[test]
fn crash_recovery_is_consistent_under_dense_conflicts() {
    // Committed same-line writes from both cores must replay in global
    // commit order; a crash between the two commits must recover the
    // earlier value, never a mix.
    for scheme in [SchemeKind::TxCache, SchemeKind::NvLlc] {
        let mut full = conflicting_system(scheme, 24);
        let total = full.run().expect("run").cycles;
        let mut sys = conflicting_system(scheme, 24);
        for i in 1..=24u64 {
            let at = total * i / 24;
            sys.run_until(at).expect("partial run");
            let state = sys.crash_state();
            let recovered = recover(&state);
            check_recovery(&state, &recovered).unwrap_or_else(|e| {
                panic!("{scheme} crash@{at}: {e}");
            });
        }
    }
}

#[test]
fn sharing_runs_are_deterministic() {
    let run = || {
        let mut sys = build(SchemeKind::TxCache, 2, 120);
        let r = sys.run().expect("run");
        (
            r.cycles,
            r.total_committed(),
            r.hierarchy.coherence.remote_invalidations.value(),
            r.cores.iter().map(|c| c.tx_conflicts.value()).sum::<u64>(),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn crash_recovery_stays_consistent_under_sharing() {
    for scheme in [SchemeKind::TxCache, SchemeKind::NvLlc] {
        // Learn the horizon once, then crash at a spread of points.
        let mut full = build(scheme, 4, 120);
        let total = full.run().expect("run").cycles;
        let mut sys = build(scheme, 4, 120);
        for i in 1..=16u64 {
            let at = total * i / 16;
            sys.run_until(at).expect("partial run");
            let state = sys.crash_state();
            let recovered = recover(&state);
            check_recovery(&state, &recovered).unwrap_or_else(|e| {
                panic!("{scheme} crash@{at}: {e}");
            });
        }
    }
}
