//! Flush-on-failure snapshot property: under eADR the crash image *is*
//! the committed image. The platform drains every dirty cache line (and
//! every write-back in flight at the memory controller) on power loss,
//! and recovery rolls back the drained stores of uncommitted in-flight
//! transactions via the per-core undo logs — so the recovered heap must
//! equal initial-NVM + commit-journal replay *exactly*, with none of the
//! in-flight leniency the generic checker grants other schemes. Wear
//! leveling is toggled randomly, exercising the drain ∘ device-row-remap
//! composition and its inverse on the recovery side.

use pmacc::recovery::recover;
use pmacc::{RunConfig, System};
use pmacc_mem::Backing;
use pmacc_prop::Config;
use pmacc_types::{layout, MachineConfig, SchemeKind, WearConfig, Word, WordAddr};
use pmacc_workloads::{WorkloadKind, WorkloadParams};

const WORKLOADS: [WorkloadKind; 5] = [
    WorkloadKind::Graph,
    WorkloadKind::Rbtree,
    WorkloadKind::Sps,
    WorkloadKind::Btree,
    WorkloadKind::Hashtable,
];

fn build(kind: WorkloadKind, seed: u64, cores: usize, wear: bool) -> System {
    let mut cfg = MachineConfig::small().with_scheme(SchemeKind::Eadr);
    cfg.cores = cores;
    if wear {
        // Aggressive rotation so the remap is far from the identity by
        // the time we crash (same knobs as the crashgrid wear cells).
        cfg.nvm.wear = WearConfig {
            leveling: true,
            region_lines: 64,
            gap_write_interval: 8,
            cell_write_budget: 100_000_000,
        };
    }
    let params = WorkloadParams {
        num_ops: 30,
        setup_items: 32,
        key_space: 24,
        insert_ratio: 80,
        seed,
        sharing: 0,
    };
    System::for_workload(cfg, kind, &params, &RunConfig::default()).expect("system builds")
}

/// Crash an eADR run at `crash_frac` of its cycle count and demand the
/// recovered heap equal the committed-store image from the journal,
/// word for word.
fn snapshot_case(kind: WorkloadKind, seed: u64, crash_frac: f64, cores: usize, wear: bool) {
    let total = {
        let mut sys = build(kind, seed, cores, wear);
        sys.run().expect("full run").cycles
    };
    let crash_at = ((total as f64) * crash_frac) as u64;
    let mut sys = build(kind, seed, cores, wear);
    sys.run_until(crash_at).expect("partial run");
    let state = sys.crash_state();
    assert_eq!(state.wear.is_some(), wear, "wear snapshot presence");

    let recovered = recover(&state);
    let heap_base = layout::persistent_heap_base().word();

    // Strict committed image: initial heap + journal replay in global
    // commit order. Deliberately *no* in-flight alternative.
    let mut expected: std::collections::HashMap<WordAddr, Word> = state
        .initial_nvm
        .iter()
        .filter(|(w, _)| *w >= heap_base)
        .collect();
    for rec in &state.journal {
        for &(w, v) in &rec.writes {
            if w >= heap_base {
                expected.insert(w, v);
            }
        }
    }
    // Compare over every heap word either image knows about, so both a
    // lost committed store and a surviving uncommitted store are caught.
    let mut touched: Vec<WordAddr> = expected.keys().copied().collect();
    touched.extend(recovered.iter().map(|(w, _)| w).filter(|w| *w >= heap_base));
    for rec in state.in_flight.iter().flatten() {
        touched.extend(rec.writes.iter().map(|&(w, _)| w).filter(|w| *w >= heap_base));
    }
    touched.sort_unstable();
    touched.dedup();
    for w in touched {
        let want = expected.get(&w).copied().unwrap_or(0);
        let got = recovered.read_word(w);
        assert_eq!(
            want, got,
            "{kind} seed {seed} crash@{crash_at} cores={cores} wear={wear}: \
             heap word {w:?} diverged from the committed image"
        );
    }

    // With leveling on, the crash image is stored in device-row space;
    // the logical view must round-trip through the remap snapshot.
    if let Some(snap) = &state.wear {
        let logical: Backing = state.logical_nvm();
        let rows = snap.to_device(&logical);
        for (w, v) in rows.iter() {
            assert_eq!(
                state.nvm.read_word(w),
                v,
                "wear remap round-trip lost device row word {w:?}"
            );
        }
    }
}

#[test]
fn eadr_crash_image_is_the_committed_image() {
    // Each case runs two full simulations; override PMACC_PROP_CASES /
    // PMACC_PROP_SEED to soak or replay (the harness prints the replay
    // command for any failing case).
    let config = Config {
        cases: std::env::var("PMACC_FUZZ_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(20),
        ..Config::default()
    };
    pmacc_prop::check_with("eadr_crash_image_is_the_committed_image", config, |g| {
        let kind = g.choose(&WORKLOADS);
        let seed = g.gen_range(0u64..1_000);
        let crash_frac = g.f64_range(0.01..1.2);
        let cores = g.choose(&[1usize, 2]);
        let wear = g.gen::<bool>();
        snapshot_case(kind, seed, crash_frac, cores, wear);
    });
}
