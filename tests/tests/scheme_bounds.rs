//! eADR brackets the paper's schemes from above: with the whole cache
//! hierarchy transiently persistent, every store is durable the moment
//! it is written — a transaction cache of infinite capacity. On every
//! quick-grid cell that upper bound must hold numerically (eADR IPC ≥
//! TC IPC) and structurally (no transaction-cache pressure, no commit
//! flushes, no drain stalls, no overflows — the counters that exist
//! only because real persistence hardware is finite).

use pmacc::RunConfig;
use pmacc_bench::grid::{run_grid_opts, Scale};
use pmacc_bench::pool::Options;
use pmacc_cpu::StallKind;
use pmacc_types::SchemeKind;
use pmacc_workloads::WorkloadKind;

#[test]
fn eadr_is_an_upper_bound_on_tc_across_the_quick_grid() {
    let grid = run_grid_opts(
        Scale::Quick,
        42,
        &RunConfig::default(),
        &Options {
            jobs: 4,
            progress: false,
        },
    )
    .expect("quick grid runs");

    for kind in WorkloadKind::all() {
        let eadr = grid.get(kind, SchemeKind::Eadr);
        let tc = grid.get(kind, SchemeKind::TxCache);
        let optimal = grid.get(kind, SchemeKind::Optimal);

        // Numeric upper bound: the TC approximates infinite-capacity
        // buffering, so it may tie eADR (the paper's point) but never
        // beat it.
        assert!(
            eadr.ipc() >= tc.ipc(),
            "{kind}: eADR IPC {} below TC IPC {}",
            eadr.ipc(),
            tc.ipc()
        );
        // eADR adds *nothing* to the native timing path — it must match
        // Optimal exactly, not merely beat TC.
        assert_eq!(
            eadr.cycles, optimal.cycles,
            "{kind}: eADR cycle count diverged from Optimal"
        );
        assert_eq!(
            eadr.total_committed(),
            tc.total_committed(),
            "{kind}: schemes committed different transaction counts"
        );

        // Structural upper bound: every finite-capacity artifact is zero.
        assert_eq!(eadr.tc_overflows(), 0, "{kind}: eADR overflowed a TC");
        for core in &eadr.cores {
            assert_eq!(
                core.stall(StallKind::TxCacheFull),
                0,
                "{kind}: eADR stalled on a full transaction cache"
            );
            assert_eq!(
                core.stall(StallKind::CommitFlush),
                0,
                "{kind}: eADR performed a blocking commit flush"
            );
            assert_eq!(
                core.stall(StallKind::PinBlocked),
                0,
                "{kind}: eADR blocked on a pinned LLC set"
            );
            assert_eq!(
                core.stall(StallKind::Fence),
                0,
                "{kind}: eADR executed ordering fences"
            );
            // Private striped instances: the conflict gate stays live
            // under eADR but must be inert without sharing (no aborts,
            // no serialization stalls).
            assert_eq!(
                core.tx_conflicts.value(),
                0,
                "{kind}: eADR hit cross-core conflicts on disjoint data"
            );
        }
        for tc_stats in &eadr.tc {
            assert_eq!(
                tc_stats.inserts.value(),
                0,
                "{kind}: eADR routed stores into a transaction cache"
            );
        }
    }
}
