//! Closed-form timing checks: tiny hand-built traces whose latencies can
//! be computed from the Table 2 parameters by hand. These pin the timing
//! model against accidental regressions.
//!
//! At 2 GHz: L1 = 1 cycle, L2 = 9, LLC = 20, TC = 3, NVM read (row miss)
//! = 130, NVM row hit = 64, NVM write = 152.

use pmacc::{RunConfig, System};
use pmacc_cpu::{Op, Trace};
use pmacc_types::{layout, MachineConfig, SchemeKind};

fn one_core(scheme: SchemeKind) -> MachineConfig {
    let mut cfg = MachineConfig::dac17_scaled().with_scheme(scheme);
    cfg.cores = 1;
    cfg
}

fn run(scheme: SchemeKind, t: Trace) -> pmacc::RunReport {
    let mut sys = System::new(one_core(scheme), vec![t], &[], &RunConfig::default()).unwrap();
    sys.run().unwrap()
}

fn load_latency_of(trace: Trace) -> f64 {
    let r = run(SchemeKind::Optimal, trace);
    r.persistent_load_latency()
}

#[test]
fn cold_nvm_load_costs_the_full_walk() {
    // L1 miss + L2 miss + LLC miss + NVM row-miss read:
    // 1 + 9 + 20 + 130 = 160 cycles (plus at most a few bus cycles).
    let mut t = Trace::new();
    t.push(Op::load(layout::persistent_heap_base()));
    let lat = load_latency_of(t);
    assert!(
        (158.0..=168.0).contains(&lat),
        "cold NVM load should be ~160 cycles, got {lat}"
    );
}

#[test]
fn second_load_hits_l1() {
    let base = layout::persistent_heap_base();
    let mut t = Trace::new();
    t.push(Op::load(base));
    t.push(Op::load(base));
    let r = run(SchemeKind::Optimal, t);
    // Mean of ~160 (cold) and 1 (L1 hit).
    let mean = r.persistent_load_latency();
    assert!(
        (75.0..=90.0).contains(&mean),
        "expected ~80.5 mean, got {mean}"
    );
}

#[test]
fn row_buffer_hit_is_cheaper() {
    let base = layout::persistent_heap_base();
    // Same NVM bank and row: lines 0 and 32 (32-bank interleave).
    let mut t = Trace::new();
    t.push(Op::load(base));
    t.push(Op::load(base.offset(32 * 64)));
    let r = run(SchemeKind::Optimal, t);
    // ~160 cold + ~94 row-hit (1+9+20+64) → mean ~127.
    let mean = r.persistent_load_latency();
    assert!(
        (120.0..=135.0).contains(&mean),
        "expected ~127 mean with a row hit, got {mean}"
    );
}

#[test]
fn llc_hit_costs_the_middle_walk() {
    // Evict from L1/L2 but not LLC, then reload: 1 + 9 + 20 = 30 cycles.
    // Scaled machine: L1 8 KB/4-way (32 sets), L2 64 KB/8-way (128 sets).
    // Lines with stride 128 alias in both L1 and L2 sets.
    let base = layout::persistent_heap_base();
    let mut t = Trace::new();
    t.push(Op::load(base));
    for i in 1..=16u64 {
        t.push(Op::load(base.offset(i * 128 * 64)));
    }
    t.push(Op::load(base)); // L1/L2 evicted; LLC keeps it
    let r = run(SchemeKind::Optimal, t);
    let hist = &r.cores[0].persistent_load_latency;
    assert!(hist.max() >= 158, "cold misses present");
    // The reload is the single cheap sample: the low quantile lands in
    // the ~30-cycle bucket, far below any memory access.
    assert!(
        hist.quantile(0.05) <= 63,
        "one load must hit the LLC at ~30 cycles (p5 = {})",
        hist.quantile(0.05)
    );
    let mean = r.persistent_load_latency();
    assert!(mean > 100.0 && mean < 170.0, "mean {mean}");
}

#[test]
fn tc_probe_serves_dropped_lines_fast() {
    // Under the TC scheme: store a line in a transaction, force the LLC
    // to drop it (tiny caches via pressure is hard here, so instead keep
    // it simple: a committed-but-unacked entry answers the probe while
    // the line is still leaving the hierarchy).
    // Build: tx stores line A; evict A from the whole hierarchy with
    // conflicting loads; reload A — the fill must come from the TC at
    // 1 + 9 + 20 + 3 = 33 cycles instead of ~160, IF the entry is still
    // buffered (drain speed dependent). We pin the drain by making the
    // store the last transactional op before a long conflicting-load run
    // that keeps the NVM read queue busy.
    let base = layout::persistent_heap_base();
    let mut cfg = one_core(SchemeKind::TxCache);
    // Slow the drain so the entry is still buffered at reload time.
    cfg.nvm.write_ns = 2_000.0;
    let mut t = Trace::new();
    t.push(Op::TxBegin);
    t.push(Op::store(base, 7));
    t.push(Op::TxEnd);
    // Evict line A from L1/L2/LLC using *volatile* conflicting lines:
    // they alias the same LLC set (stride 2048 lines; the volatile heap
    // base is itself 2048-aligned) but go to the DRAM channel, so the
    // only NVM-region load in the trace is the final reload of A.
    let vol = layout::volatile_heap_base();
    for i in 1..=20u64 {
        t.push(Op::load(vol.offset(i * 2048 * 64)));
    }
    t.push(Op::load(base));
    let mut sys = System::new(cfg, vec![t], &[], &RunConfig::default()).unwrap();
    let r = sys.run().unwrap();
    // The reload is the only persistent load; served by the TC probe it
    // costs L1 + L2 + LLC + TC = 1 + 9 + 20 + 3 = 33 cycles instead of
    // waiting out the 2 µs NVM write backlog.
    let max = r.cores[0].persistent_load_latency.max();
    assert!(
        (30..=60).contains(&max),
        "probe-served reload should cost ~33 cycles, got {max}"
    );
    assert!(
        r.tc.iter().any(|s| s.probe_hits.value() > 0),
        "the reload must probe the transaction cache"
    );
    assert!(r.dropped_llc_writes > 0, "the eviction must have been dropped");
}

#[test]
fn store_buffer_hides_store_latency() {
    // 20 independent persistent stores to distinct lines: the core
    // retires them at ~1 op/cycle (issue-bound), far faster than the
    // NVM writes complete.
    let base = layout::persistent_heap_base();
    let mut t = Trace::new();
    for i in 0..20u64 {
        t.push(Op::store(base.offset(i * 64), i));
    }
    let r = run(SchemeKind::Optimal, t);
    assert!(
        r.cycles < 600,
        "stores must retire through the store buffer, took {} cycles",
        r.cycles
    );
}

#[test]
fn fence_pays_the_nvm_write_round_trip() {
    let base = layout::persistent_heap_base();
    let mut t = Trace::new();
    t.push(Op::store(base, 1));
    t.push(Op::Flush { addr: base });
    t.push(Op::Fence);
    let r = run(SchemeKind::Optimal, t);
    // NVM write = 152 cycles plus queueing/issue overhead.
    assert!(
        r.cycles >= 152 && r.cycles <= 200,
        "fence cost should be one NVM write RTT, got {}",
        r.cycles
    );
}
