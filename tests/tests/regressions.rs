//! Deterministic regressions for bugs the crash-consistency fuzzer found
//! during development. Each case pins the exact machine, workload, seed
//! and crash cycle that exposed the bug; all must recover consistently
//! forever after.
//!
//! 1. **Out-of-order COW shadow**: shadow records were appended at NVM
//!    *completion* time; bank parallelism completed same-transaction
//!    writes out of order, so recovery replayed an overflowed
//!    transaction's writes in the wrong order.
//! 2. **Stale COW replay**: committed shadows were never truncated after
//!    their home-location installs, so recovery replayed an *old*
//!    transaction over newer NVM contents.
//! 3. **TC/COW commit-order interleaving**: recovery replayed all TC
//!    entries then all COW shadows, letting an earlier overflowed
//!    transaction clobber a later TC-buffered one.
//! 4. **Missing drain barrier**: a later transaction's TC drain could
//!    reach the NVM before an earlier overflowed transaction's COW
//!    installs, violating the §3 per-core conflict-order guarantee.

use pmacc::recovery::{check_recovery, recover};
use pmacc::{RunConfig, System};
use pmacc_types::{MachineConfig, SchemeKind};
use pmacc_workloads::{WorkloadKind, WorkloadParams};

/// Runs one pinned configuration through a crash sweep.
fn check(kind: WorkloadKind, seed: u64, tc_bytes: u64, crash_cycles: &[u64]) {
    let mut cfg = MachineConfig::small().with_scheme(SchemeKind::TxCache);
    cfg.txcache.size_bytes = tc_bytes;
    let params = WorkloadParams::tiny(seed);
    for &crash in crash_cycles {
        let mut sys =
            System::for_workload(cfg.clone(), kind, &params, &RunConfig::default()).unwrap();
        sys.run_until(crash).unwrap();
        let state = sys.crash_state();
        let recovered = recover(&state);
        check_recovery(&state, &recovered)
            .unwrap_or_else(|e| panic!("{kind} seed {seed} crash@{crash}: {e}"));
    }
}

/// The high-conflict configuration the fuzzer used (few keys, tiny TC so
/// the COW path fires constantly).
fn fuzz_check(kind: WorkloadKind, seed: u64, crash: u64) {
    let mut cfg = MachineConfig::small().with_scheme(SchemeKind::TxCache);
    cfg.txcache.size_bytes = 4 * 64;
    let params = WorkloadParams {
        num_ops: 40,
        setup_items: 32,
        key_space: 24,
        insert_ratio: 80,
        seed,
        sharing: 0,
    };
    let mut sys = System::for_workload(cfg, kind, &params, &RunConfig::default()).unwrap();
    sys.run_until(crash).unwrap();
    let state = sys.crash_state();
    let recovered = recover(&state);
    check_recovery(&state, &recovered)
        .unwrap_or_else(|e| panic!("{kind} seed {seed} crash@{crash}: {e}"));
}

#[test]
fn bug1_out_of_order_cow_shadow() {
    // rbtree rotations write the same word twice within one overflowed
    // transaction; recovery must apply them in program order.
    check(WorkloadKind::Rbtree, 11, 16 * 64, &[5049, 4000, 6000]);
}

#[test]
fn bug2_stale_cow_replay_after_install() {
    // btree seed 58: a committed overflowed transaction's shadow must not
    // replay over a later transaction's already-durable values.
    fuzz_check(WorkloadKind::Btree, 58, 3977);
}

#[test]
fn bug3_tc_cow_commit_order() {
    // btree: an overflowed transaction (COW) committed before a
    // TC-buffered one; recovery must interleave the sources by TxID.
    check(WorkloadKind::Btree, 11, 16 * 64, &[7802, 7000, 9000]);
}

#[test]
fn bug4_drain_barrier_behind_cow_installs() {
    // Sweep densely around the original failure window: without the
    // barrier, a later drain lands before an earlier install.
    let crashes: Vec<u64> = (1..40).map(|i| 3500 + i * 25).collect();
    for crash in crashes {
        fuzz_check(WorkloadKind::Btree, 58, crash);
    }
}

#[test]
fn sp_commit_marker_in_flight_window() {
    // SP's marker becomes durable before TX_END retires; the checker must
    // accept the in-flight transaction all-or-nothing (graph seed 12).
    let cfg = MachineConfig::small().with_scheme(SchemeKind::Sp);
    let params = WorkloadParams::tiny(12);
    for crash in [33875u64, 30000, 38000] {
        let mut sys =
            System::for_workload(cfg.clone(), WorkloadKind::Graph, &params, &RunConfig::default())
                .unwrap();
        sys.run_until(crash).unwrap();
        let state = sys.crash_state();
        let recovered = recover(&state);
        check_recovery(&state, &recovered)
            .unwrap_or_else(|e| panic!("sp/graph crash@{crash}: {e}"));
    }
}
