//! End-to-end crash-consistency tests: run each scheme on real workloads,
//! cut the power at many points, run the scheme's recovery procedure and
//! check the result is transaction-atomic and durable.

use pmacc::recovery::{check_recovery, recover};
use pmacc::{RunConfig, System};
use pmacc_integration::crash_points;
use pmacc_types::{MachineConfig, SchemeKind};
use pmacc_workloads::{WorkloadKind, WorkloadParams};

fn machine(scheme: SchemeKind) -> MachineConfig {
    MachineConfig::small().with_scheme(scheme)
}

fn total_cycles(scheme: SchemeKind, kind: WorkloadKind, seed: u64) -> u64 {
    let mut sys = System::for_workload(
        machine(scheme),
        kind,
        &WorkloadParams::tiny(seed),
        &RunConfig::default(),
    )
    .expect("system builds");
    let report = sys.run().expect("runs to completion");
    report.cycles
}

fn check_scheme_recovers(scheme: SchemeKind, kind: WorkloadKind, seed: u64) {
    let total = total_cycles(scheme, kind, seed);
    for crash_at in crash_points(total) {
        let mut sys = System::for_workload(
            machine(scheme),
            kind,
            &WorkloadParams::tiny(seed),
            &RunConfig::default(),
        )
        .expect("system builds");
        sys.run_until(crash_at).expect("partial run");
        let state = sys.crash_state();
        let recovered = recover(&state);
        check_recovery(&state, &recovered).unwrap_or_else(|e| {
            panic!("{scheme}/{kind} crash@{crash_at}: {e}");
        });
    }
}

#[test]
fn tc_recovers_every_workload() {
    for kind in WorkloadKind::all() {
        check_scheme_recovers(SchemeKind::TxCache, kind, 11);
    }
}

#[test]
fn sp_recovers_every_workload() {
    for kind in WorkloadKind::all() {
        check_scheme_recovers(SchemeKind::Sp, kind, 12);
    }
}

#[test]
fn nvllc_recovers_every_workload() {
    for kind in WorkloadKind::all() {
        check_scheme_recovers(SchemeKind::NvLlc, kind, 13);
    }
}

#[test]
fn tc_recovers_under_overflow_pressure() {
    // A machine with a tiny transaction cache so the COW fall-back path is
    // exercised (rbtree inserts easily exceed 4 entries).
    let mut cfg = machine(SchemeKind::TxCache);
    cfg.txcache.size_bytes = 4 * 64;
    let total = {
        let mut sys = System::for_workload(
            cfg.clone(),
            WorkloadKind::Rbtree,
            &WorkloadParams::tiny(7),
            &RunConfig::default(),
        )
        .unwrap();
        let r = sys.run().unwrap();
        assert!(r.tc_overflows() > 0, "overflow path must trigger");
        r.cycles
    };
    for crash_at in crash_points(total) {
        let mut sys = System::for_workload(
            cfg.clone(),
            WorkloadKind::Rbtree,
            &WorkloadParams::tiny(7),
            &RunConfig::default(),
        )
        .unwrap();
        sys.run_until(crash_at).unwrap();
        let state = sys.crash_state();
        let recovered = recover(&state);
        check_recovery(&state, &recovered)
            .unwrap_or_else(|e| panic!("overflow crash@{crash_at}: {e}"));
    }
}

#[test]
fn optimal_is_not_crash_consistent() {
    // Without persistence support, some crash point must leave the NVM
    // torn relative to the committed-transaction expectation.
    let total = total_cycles(SchemeKind::Optimal, WorkloadKind::Sps, 3);
    let mut any_violation = false;
    for crash_at in (1..10).map(|i| i * total / 10) {
        let mut sys = System::for_workload(
            machine(SchemeKind::Optimal),
            WorkloadKind::Sps,
            &WorkloadParams::tiny(3),
            &RunConfig::default(),
        )
        .unwrap();
        sys.run_until(crash_at).unwrap();
        let state = sys.crash_state();
        let recovered = recover(&state);
        if check_recovery(&state, &recovered).is_err() {
            any_violation = true;
            break;
        }
    }
    assert!(
        any_violation,
        "Optimal should violate crash consistency at some crash point"
    );
}

#[test]
fn recovery_after_quiescence_matches_final_state() {
    // Once everything drained, the recovered image must equal the full
    // committed state for every persistent scheme.
    for scheme in [SchemeKind::Sp, SchemeKind::TxCache, SchemeKind::NvLlc] {
        let mut sys = System::for_workload(
            machine(scheme),
            WorkloadKind::Btree,
            &WorkloadParams::tiny(5),
            &RunConfig::default(),
        )
        .unwrap();
        let report = sys.run().unwrap();
        assert!(report.total_committed() > 0);
        let state = sys.crash_state();
        let recovered = recover(&state);
        check_recovery(&state, &recovered).expect("quiescent recovery is exact");
    }
}
