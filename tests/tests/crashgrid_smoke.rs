//! End-to-end checks of the crash-campaign engine: the quick-scale
//! campaign must be *dense* (≥ 50× more crash points per cell than the
//! legacy fixed spread in [`pmacc_integration::crash_points`]), *clean*
//! (zero violations for every persistent scheme, including the
//! COW-overflow cell, while the `Optimal` control is detected),
//! *deterministic* (byte-identical reports at any worker count) and
//! *sharp* (a deliberately broken recovery is caught and minimized to a
//! named reproducer).

use pmacc_bench::crashgrid::{
    parse_report, run_campaign, CampaignConfig, Mutation, CRASHGRID_SCHEMA,
};
use pmacc_bench::pool::Options;
use pmacc_integration::crash_points;
use pmacc_telemetry::Json;
use pmacc_types::SchemeKind;
use pmacc_workloads::WorkloadKind;

fn opts(jobs: usize) -> Options {
    Options {
        jobs,
        progress: false,
    }
}

#[test]
fn quick_campaign_is_dense_and_consistent_across_all_schemes() {
    let cfg = CampaignConfig::quick(42);
    let report = run_campaign(&cfg, &opts(4)).expect("campaign runs");

    // Every scheme is swept, including the non-persistent control.
    for scheme in SchemeKind::all() {
        assert!(
            report.cells.iter().any(|c| c.spec.scheme == scheme),
            "scheme {scheme} missing from the sweep"
        );
    }
    // The COW-overflow cell (tiny transaction cache) is present and its
    // dense schedule actually clusters around COW commits.
    let overflow = report
        .cells
        .iter()
        .find(|c| c.spec.tc_entries.is_some())
        .expect("overflow cell present");
    assert_eq!(overflow.spec.scheme, SchemeKind::TxCache);
    assert!(
        overflow.coverage.cow_commit > 0,
        "overflow cell must probe COW-commit boundaries, got {:?}",
        overflow.coverage
    );

    for cell in &report.cells {
        // Density floor: ≥ 50× the legacy fixed spread for this run.
        let baseline = crash_points(cell.total_cycles).len();
        assert!(
            cell.points_tested >= 50 * baseline,
            "{}: only {} points vs 50×{baseline} required",
            cell.spec.label(),
            cell.points_tested
        );
        assert_eq!(cell.coverage.total(), cell.points_tested);
        assert!(cell.coverage.quiescent >= 1, "{}", cell.spec.label());
        if cell.expect_consistent {
            assert_eq!(
                cell.violation_count,
                0,
                "{} violated: {:?}",
                cell.spec.label(),
                cell.violations.first()
            );
        }
    }
    // The wear-leveling cells are present (TC and NVLLC across two
    // workloads, plus the eADR drain∘remap cell) and clean: recovery
    // reconstructed the remap table from the crash snapshot at every
    // point — their violations are counted in the per-cell loop above
    // like any expect-consistent cell.
    let wear_cells: Vec<_> = report.cells.iter().filter(|c| c.spec.wear).collect();
    assert_eq!(wear_cells.len(), 5, "wear-leveling cells missing");
    assert!(wear_cells.iter().all(|c| c.expect_consistent));
    assert!(wear_cells.iter().any(|c| c.spec.scheme == SchemeKind::Eadr));

    // The checker has teeth: the Optimal control must trip it somewhere.
    assert!(
        report.control_detections() > 0,
        "Optimal control produced no detections — oracle may be vacuous"
    );
    assert_eq!(report.total_violations(), 0);
    assert!(report.reproducers.is_empty());

    // The emitted document round-trips through the schema validator.
    let doc = Json::parse(&report.to_json().to_pretty()).expect("report is valid JSON");
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some(CRASHGRID_SCHEMA)
    );
    let summary = parse_report(&doc).expect("report validates");
    assert_eq!(summary.cells, report.cells.len());
    assert_eq!(summary.total_points, report.total_points());
    assert_eq!(summary.total_violations, 0);
}

#[test]
fn crash_snapshots_land_exactly_on_the_requested_cycle() {
    // The campaign's boundary-clustered schedules are only as sharp as
    // the injection point: a snapshot taken even a few cycles past the
    // requested point can skip the vulnerable window entirely. The
    // simulator must stamp `crash_state().cycle` with the requested
    // cycle itself, not the next event after it.
    use pmacc::{RunConfig, System};
    use pmacc_types::MachineConfig;
    use pmacc_workloads::WorkloadParams;

    let machine = MachineConfig::small().with_scheme(SchemeKind::TxCache);
    let mut sys = System::for_workload(
        machine,
        WorkloadKind::Rbtree,
        &WorkloadParams::tiny(42),
        &RunConfig::default(),
    )
    .expect("system builds");
    for point in [37u64, 161, 1_419, 2_692, 10_000] {
        sys.run_until(point).expect("simulation advances");
        assert_eq!(
            sys.crash_state().cycle,
            point,
            "crash snapshot must land exactly on the requested cycle"
        );
    }
}

#[test]
fn report_bytes_are_invariant_to_worker_count() {
    let mut cfg = CampaignConfig::quick(7);
    cfg.schemes = vec![SchemeKind::TxCache, SchemeKind::Sp];
    cfg.workloads = vec![WorkloadKind::Sps];
    cfg.core_counts = vec![1, 2];
    let serial = run_campaign(&cfg, &opts(1)).expect("jobs=1 runs");
    let fanned = run_campaign(&cfg, &opts(4)).expect("jobs=4 runs");
    assert_eq!(
        serial.to_json().to_pretty(),
        fanned.to_json().to_pretty(),
        "report must be byte-identical at --jobs 1 vs --jobs 4"
    );
}

#[test]
fn keep_uncommitted_eadr_mutation_is_caught_and_minimized() {
    // The eADR oracle has teeth: recovery that keeps the drained stores
    // of uncommitted in-flight transactions (skipping undo rollback)
    // must violate atomicity at some mid-transaction crash point, and
    // the minimizer must shrink it to a self-contained reproducer.
    let mut cfg = CampaignConfig::quick(42);
    cfg.schemes = vec![SchemeKind::Eadr];
    cfg.workloads = vec![WorkloadKind::Graph];
    cfg.core_counts = vec![1];
    cfg.overflow_cell = false;
    cfg.mutation = Mutation::KeepUncommittedEadr;
    let report = run_campaign(&cfg, &opts(2)).expect("campaign runs");
    assert!(
        report.total_violations() > 0,
        "skipping eADR undo rollback must violate the oracle"
    );
    let repro = report
        .reproducers
        .first()
        .expect("violating eADR cell is minimized into a reproducer");
    assert_eq!(repro.scheme, SchemeKind::Eadr);
    assert_eq!(repro.mutation, Mutation::KeepUncommittedEadr);
    assert!(repro.replay().is_err(), "reproducer must still fail");
    let mut fixed = repro.clone();
    fixed.mutation = Mutation::None;
    assert!(
        fixed.replay().is_ok(),
        "the same crash point must be consistent with rollback intact"
    );
}

#[test]
fn broken_recovery_is_caught_and_minimized_to_a_named_reproducer() {
    let mut cfg = CampaignConfig::quick(42);
    cfg.schemes = vec![SchemeKind::TxCache];
    cfg.workloads = vec![WorkloadKind::Sps];
    cfg.core_counts = vec![1];
    cfg.overflow_cell = false;
    cfg.mutation = Mutation::DropCommittedTc;
    let report = run_campaign(&cfg, &opts(2)).expect("campaign runs");
    assert!(
        report.total_violations() > 0,
        "a dropped committed TC entry must violate the oracle"
    );
    let repro = report
        .reproducers
        .first()
        .expect("violating cell is minimized into a reproducer");
    assert!(!repro.name.is_empty());
    assert_eq!(repro.mutation, Mutation::DropCommittedTc);
    // Minimization shrank the workload prefix below the campaign's.
    assert!(
        repro.params.num_ops <= cfg.params.num_ops,
        "prefix reduction must not grow the workload"
    );
    // The reproducer is self-contained: replaying it reproduces the
    // failure verbatim, and the same point is clean without the defect.
    assert!(repro.replay().is_err(), "reproducer must still fail");
    let mut fixed = repro.clone();
    fixed.mutation = Mutation::None;
    assert!(
        fixed.replay().is_ok(),
        "the same crash point must be consistent with recovery intact"
    );
}
