//! Property-based crash-consistency fuzzing: random workloads, random
//! crash points, every persistent scheme — recovery must always be
//! transaction-atomic and durable.

use proptest::prelude::*;

use pmacc::recovery::{check_recovery, recover};
use pmacc::{RunConfig, System};
use pmacc_types::{MachineConfig, SchemeKind};
use pmacc_workloads::{WorkloadKind, WorkloadParams};

fn scheme_strategy() -> impl Strategy<Value = SchemeKind> {
    prop_oneof![
        Just(SchemeKind::Sp),
        Just(SchemeKind::TxCache),
        Just(SchemeKind::NvLlc),
    ]
}

fn workload_strategy() -> impl Strategy<Value = WorkloadKind> {
    prop_oneof![
        Just(WorkloadKind::Graph),
        Just(WorkloadKind::Rbtree),
        Just(WorkloadKind::Sps),
        Just(WorkloadKind::Btree),
        Just(WorkloadKind::Hashtable),
    ]
}

fn build(scheme: SchemeKind, kind: WorkloadKind, seed: u64, tiny_tc: bool) -> System {
    let mut cfg = MachineConfig::small().with_scheme(scheme);
    if tiny_tc {
        // Force the overflow/COW path to fire constantly.
        cfg.txcache.size_bytes = 4 * 64;
    }
    // High-conflict parameters: few keys, so transactions rewrite the
    // same words over and over (stresses ordering of replay paths).
    let params = WorkloadParams {
        num_ops: 40,
        setup_items: 32,
        key_space: 24,
        insert_ratio: 80,
        seed,
    };
    System::for_workload(cfg, kind, &params, &RunConfig::default()).expect("system builds")
}

proptest! {
    #![proptest_config(ProptestConfig {
        // 24 cases by default (each runs two full simulations); override
        // with PMACC_FUZZ_CASES for deeper soak runs.
        cases: std::env::var("PMACC_FUZZ_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(24),
        .. ProptestConfig::default()
    })]

    #[test]
    fn recovery_is_always_consistent(
        scheme in scheme_strategy(),
        kind in workload_strategy(),
        seed in 0u64..1_000,
        crash_frac in 0.01f64..1.2,
        tiny_tc in any::<bool>(),
    ) {
        let total = {
            let mut sys = build(scheme, kind, seed, tiny_tc);
            sys.run().expect("full run").cycles
        };
        let crash_at = ((total as f64) * crash_frac) as u64;
        let mut sys = build(scheme, kind, seed, tiny_tc);
        sys.run_until(crash_at).expect("partial run");
        let state = sys.crash_state();
        let recovered = recover(&state);
        if let Err(e) = check_recovery(&state, &recovered) {
            panic!("{scheme}/{kind} seed {seed} crash@{crash_at} (tiny_tc={tiny_tc}): {e}");
        }
    }
}
