//! Property-based crash-consistency fuzzing: random workloads, random
//! crash points, every persistent scheme — recovery must always be
//! transaction-atomic and durable.

use pmacc::recovery::{check_recovery, recover};
use pmacc::{RunConfig, System};
use pmacc_prop::Config;
use pmacc_types::{MachineConfig, SchemeKind};
use pmacc_workloads::{WorkloadKind, WorkloadParams};

const SCHEMES: [SchemeKind; 4] = [
    SchemeKind::Sp,
    SchemeKind::TxCache,
    SchemeKind::NvLlc,
    SchemeKind::Eadr,
];

const WORKLOADS: [WorkloadKind; 5] = [
    WorkloadKind::Graph,
    WorkloadKind::Rbtree,
    WorkloadKind::Sps,
    WorkloadKind::Btree,
    WorkloadKind::Hashtable,
];

fn build(scheme: SchemeKind, kind: WorkloadKind, seed: u64, tiny_tc: bool) -> System {
    let mut cfg = MachineConfig::small().with_scheme(scheme);
    if tiny_tc {
        // Force the overflow/COW path to fire constantly.
        cfg.txcache.size_bytes = 4 * 64;
    }
    // High-conflict parameters: few keys, so transactions rewrite the
    // same words over and over (stresses ordering of replay paths).
    let params = WorkloadParams {
        num_ops: 40,
        setup_items: 32,
        key_space: 24,
        insert_ratio: 80,
        seed,
        sharing: 0,
    };
    System::for_workload(cfg, kind, &params, &RunConfig::default()).expect("system builds")
}

/// One fully pinned-down crash scenario: run to completion to learn the
/// cycle count, crash a second identical run at `crash_frac`, recover,
/// and check transaction atomicity + durability.
fn crash_case(scheme: SchemeKind, kind: WorkloadKind, seed: u64, crash_frac: f64, tiny_tc: bool) {
    let total = {
        let mut sys = build(scheme, kind, seed, tiny_tc);
        sys.run().expect("full run").cycles
    };
    let crash_at = ((total as f64) * crash_frac) as u64;
    let mut sys = build(scheme, kind, seed, tiny_tc);
    sys.run_until(crash_at).expect("partial run");
    let state = sys.crash_state();
    let recovered = recover(&state);
    if let Err(e) = check_recovery(&state, &recovered) {
        panic!("{scheme}/{kind} seed {seed} crash@{crash_at} (tiny_tc={tiny_tc}): {e}");
    }
}

/// The failure cases the retired `proptest-regressions` file had pinned;
/// kept as explicit deterministic regressions so they run on every
/// `cargo test` forever.
#[test]
fn recovery_regression_sp_hashtable_seed_334() {
    crash_case(
        SchemeKind::Sp,
        WorkloadKind::Hashtable,
        334,
        0.4337109837822969,
        false,
    );
}

#[test]
fn recovery_regression_txcache_btree_seed_58() {
    crash_case(
        SchemeKind::TxCache,
        WorkloadKind::Btree,
        58,
        0.8418357596500805,
        true,
    );
}

#[test]
fn recovery_is_always_consistent() {
    // 24 cases by default (each runs two full simulations); override
    // with PMACC_FUZZ_CASES for deeper soak runs.
    let cases = std::env::var("PMACC_FUZZ_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(24);
    let config = Config {
        cases,
        ..Config::default()
    };
    pmacc_prop::check_with("recovery_is_always_consistent", config, |g| {
        let scheme = g.choose(&SCHEMES);
        let kind = g.choose(&WORKLOADS);
        let seed = g.gen_range(0u64..1_000);
        let crash_frac = g.f64_range(0.01..1.2);
        let tiny_tc = g.gen::<bool>();
        crash_case(scheme, kind, seed, crash_frac, tiny_tc);
    });
}
