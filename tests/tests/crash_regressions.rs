//! Crash-campaign regression replays: every reproducer the `crashgrid`
//! minimizer has ever emitted for a real (or deliberately injected)
//! recovery defect is pinned here *verbatim* — the exact JSON the
//! campaign wrote — and replayed on every test run.
//!
//! Two directions are checked:
//!
//! - With the recorded mutation in force, the replay must still fail:
//!   the reproducer is self-contained and the minimized crash cycle
//!   really is a point where the defect corrupts recovery.
//! - With recovery intact (`mutation: none`), the *same* crash cycle
//!   must be consistent: these are the most sensitive points the
//!   campaign has found, so they make the sharpest regression guards
//!   for the real recovery path.
//!
//! To pin a new case, paste the reproducer object from the campaign
//! report (`crashgrid --json ...`, `reproducers` array) into the
//! matching list below, unedited.

use pmacc_bench::crashgrid::{Mutation, Reproducer};
use pmacc_telemetry::Json;

/// Reproducers minimized by `crashgrid --mutate ...` campaigns. Each
/// records a deliberate recovery defect and the earliest crash cycle
/// (under the smallest workload prefix) where that defect corrupts the
/// recovered image.
const MUTATION_REPRODUCERS: &[&str] = &[
    // drop-committed-tc: recovery loses each core's newest committed
    // transaction-cache entry.
    r#"{"name": "tc-sps-c1-s42-cy161", "scheme": "tc", "workload": "sps", "cores": 1, "tc_entries": null, "num_ops": 1, "setup_items": 100, "key_space": 500, "insert_ratio": 50, "seed": 42, "crash_cycle": 161, "mutation": "drop-committed-tc"}"#,
    r#"{"name": "tc-rbtree-c1-s42-cy2692", "scheme": "tc", "workload": "rbtree", "cores": 1, "tc_entries": null, "num_ops": 3, "setup_items": 100, "key_space": 500, "insert_ratio": 50, "seed": 42, "crash_cycle": 2692, "mutation": "drop-committed-tc"}"#,
    // Same defect in the COW-overflow cell (4-entry transaction cache).
    r#"{"name": "tc-rbtree-c1-tc4-s42-cy2692", "scheme": "tc", "workload": "rbtree", "cores": 1, "tc_entries": 4, "num_ops": 3, "setup_items": 100, "key_space": 500, "insert_ratio": 50, "seed": 42, "crash_cycle": 2692, "mutation": "drop-committed-tc"}"#,
    // skip-cow-replay: recovery never applies committed COW shadows.
    r#"{"name": "tc-rbtree-c1-s42-cy4622", "scheme": "tc", "workload": "rbtree", "cores": 1, "tc_entries": null, "num_ops": 12, "setup_items": 100, "key_space": 500, "insert_ratio": 50, "seed": 42, "crash_cycle": 4622, "mutation": "skip-cow-replay"}"#,
    r#"{"name": "tc-rbtree-c1-tc4-s42-cy4338", "scheme": "tc", "workload": "rbtree", "cores": 1, "tc_entries": 4, "num_ops": 12, "setup_items": 100, "key_space": 500, "insert_ratio": 50, "seed": 42, "crash_cycle": 4338, "mutation": "skip-cow-replay"}"#,
    // keep-uncommitted-eadr: eADR recovery skips rolling back the
    // flush-on-failure drain of uncommitted in-flight transactions.
    // Catchable only at mid-transaction crashes — with the whole write
    // set drained the checker rightly accepts the completed transaction
    // — so these pin the sharpest windows the minimizer found.
    r#"{"name": "eadr-graph-c1-s42-cy323", "scheme": "eadr", "workload": "graph", "cores": 1, "tc_entries": null, "num_ops": 12, "setup_items": 100, "key_space": 500, "insert_ratio": 50, "seed": 42, "crash_cycle": 323, "mutation": "keep-uncommitted-eadr"}"#,
    r#"{"name": "eadr-rbtree-c2-s42-cy5404", "scheme": "eadr", "workload": "rbtree", "cores": 2, "tc_entries": null, "num_ops": 12, "setup_items": 100, "key_space": 500, "insert_ratio": 50, "seed": 42, "crash_cycle": 5404, "mutation": "keep-uncommitted-eadr"}"#,
    r#"{"name": "eadr-hashtable-c2-s42-cy7926", "scheme": "eadr", "workload": "hashtable", "cores": 2, "tc_entries": null, "num_ops": 50, "setup_items": 100, "key_space": 500, "insert_ratio": 50, "seed": 42, "crash_cycle": 7926, "mutation": "keep-uncommitted-eadr"}"#,
];

fn parse(raw: &str) -> Reproducer {
    let doc = Json::parse(raw).expect("pinned reproducer is valid JSON");
    Reproducer::from_json(&doc).expect("pinned reproducer parses")
}

#[test]
fn pinned_mutation_reproducers_still_reproduce_their_defect() {
    for raw in MUTATION_REPRODUCERS {
        let r = parse(raw);
        assert_ne!(r.mutation, Mutation::None, "{}: pin records a defect", r.name);
        assert!(
            r.replay().is_err(),
            "{}: minimized defect no longer reproduces — if the mutation's \
             meaning changed, re-minimize and re-pin",
            r.name
        );
    }
}

#[test]
fn pinned_crash_cycles_are_consistent_with_recovery_intact() {
    for raw in MUTATION_REPRODUCERS {
        let mut r = parse(raw);
        r.mutation = Mutation::None;
        r.replay().unwrap_or_else(|e| {
            panic!("{}: real recovery fails at this pinned crash cycle: {e}", r.name)
        });
    }
}

#[test]
fn pinned_reproducers_roundtrip_byte_for_byte() {
    // The pins are the campaign's own output: parsing and re-serializing
    // must reproduce the exact object (field order included), so a pin
    // can always be diffed against a fresh campaign report.
    for raw in MUTATION_REPRODUCERS {
        let doc = Json::parse(raw).expect("valid JSON");
        let r = Reproducer::from_json(&doc).expect("parses");
        assert_eq!(r.to_json(), doc, "{}", r.name);
    }
}
