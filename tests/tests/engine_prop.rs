//! Property tests for the skip-ahead event engine: the queue's total
//! order, exact-cycle crash stamping, and the equivalence of one
//! uninterrupted run with arbitrarily chopped-up stepping.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use pmacc::{RunConfig, System};
use pmacc_telemetry::{Json, ToJson};
use pmacc_types::{MachineConfig, SchemeKind};
use pmacc_workloads::{WorkloadKind, WorkloadParams};

/// The engine orders its queue by `(cycle, push sequence)`. Feeding a
/// mirror of that discipline random cycles must pop a *stable* sort:
/// ascending cycle, and FIFO among events pushed for the same cycle —
/// the invariant that makes event handling deterministic and
/// starvation-free regardless of push order.
#[test]
fn event_queue_pops_a_stable_total_order() {
    pmacc_prop::check("event_queue_pops_a_stable_total_order", |g| {
        let n = g.gen_range(1usize..200);
        let mut heap: BinaryHeap<Reverse<(u64, u64, u32)>> = BinaryHeap::new();
        let mut pushed = Vec::new();
        for seq in 0..n as u64 {
            // A narrow cycle range forces plenty of same-cycle ties.
            let cycle = g.gen_range(0u64..16);
            let payload = g.gen::<u32>();
            heap.push(Reverse((cycle, seq, payload)));
            pushed.push((cycle, seq, payload));
        }
        let mut expected = pushed.clone();
        expected.sort_by_key(|&(cycle, seq, _)| (cycle, seq));
        let mut popped = Vec::new();
        while let Some(Reverse(e)) = heap.pop() {
            popped.push(e);
        }
        assert_eq!(popped, expected, "pop order must be the stable (cycle, seq) sort");
    });
}

fn small_system(scheme: SchemeKind, kind: WorkloadKind, seed: u64) -> System {
    let cfg = MachineConfig::small().with_scheme(scheme);
    let params = WorkloadParams {
        num_ops: 60,
        setup_items: 40,
        key_space: 64,
        insert_ratio: 60,
        seed,
        sharing: 0,
    };
    System::for_workload(cfg, kind, &params, &RunConfig::default()).expect("system builds")
}

const SCHEMES: [SchemeKind; 4] = [
    SchemeKind::Optimal,
    SchemeKind::Sp,
    SchemeKind::TxCache,
    SchemeKind::NvLlc,
];

const KINDS: [WorkloadKind; 3] = [
    WorkloadKind::Sps,
    WorkloadKind::Btree,
    WorkloadKind::Hashtable,
];

/// `run_until(n)` must land the clock on `n` exactly for *any* `n` —
/// the engine schedules a clock-only wake there — so a crash snapshot
/// carries the requested cycle even when the skip-ahead jump would
/// otherwise leap over it.
#[test]
fn run_until_stamps_arbitrary_cycles_exactly() {
    pmacc_prop::check("run_until_stamps_arbitrary_cycles_exactly", |g| {
        let scheme = g.choose(&SCHEMES);
        let kind = g.choose(&KINDS);
        let seed = g.gen_range(0u64..1_000);
        let total = {
            let mut sys = small_system(scheme, kind, seed);
            sys.run().expect("full run").cycles
        };
        let mut sys = small_system(scheme, kind, seed);
        // A monotone ladder of random stops, each stamped exactly (the
        // last may land past the quiesce point; the wake still fires).
        let mut at = 0u64;
        for _ in 0..g.gen_range(1usize..6) {
            at += g.gen_range(1u64..total.max(2));
            sys.run_until(at).expect("partial run");
            assert_eq!(
                sys.crash_state().cycle,
                at,
                "{scheme}/{kind} seed {seed}: clock must land on {at}"
            );
        }
    });
}

/// Drops the top-level `engine` key: the effort counters legitimately
/// differ between one uninterrupted run and a stepped run (every
/// `run_until` stop schedules an extra clock-only wake).
fn strip_engine(j: Json) -> Json {
    match j {
        Json::Obj(pairs) => Json::Obj(pairs.into_iter().filter(|(k, _)| k != "engine").collect()),
        other => other,
    }
}

/// Chopping a run into arbitrary `run_until` steps must not change any
/// simulated outcome: the final report (minus the engine's own effort
/// counters) is byte-identical to the uninterrupted run's. This is the
/// load-bearing property behind crash-point sweeps — a crash snapshot
/// at cycle `n` observes the same machine the full run passed through.
#[test]
fn stepped_execution_matches_uninterrupted_run() {
    pmacc_prop::check("stepped_execution_matches_uninterrupted_run", |g| {
        let scheme = g.choose(&SCHEMES);
        let kind = g.choose(&KINDS);
        let seed = g.gen_range(0u64..1_000);
        let (reference, total) = {
            let mut sys = small_system(scheme, kind, seed);
            let r = sys.run().expect("full run");
            let cycles = r.cycles;
            (strip_engine(r.to_json()).to_pretty(), cycles)
        };
        let mut sys = small_system(scheme, kind, seed);
        let mut at = 0u64;
        while at < total {
            at += g.gen_range(1u64..(total / 3).max(2));
            sys.run_until(at.min(total.saturating_sub(1))).expect("partial run");
        }
        let stepped = strip_engine(sys.run().expect("finishes").to_json()).to_pretty();
        assert_eq!(
            stepped, reference,
            "{scheme}/{kind} seed {seed}: stepped run diverged from batch run"
        );
    });
}
