//! The parallel experiment runner must be *invisible* in the results:
//! the same seed has to produce a bit-identical grid at any worker
//! count, and a panicking cell must fail the whole batch with the
//! offending cell named rather than tearing down a worker thread.
//!
//! This is the regression gate for `pmacc_bench::pool` — every
//! (workload, scheme) cell owns its entire simulated machine, so the
//! only way parallelism can change results is a shared-state bug.

use pmacc::RunConfig;
use pmacc_bench::grid::{run_grid_opts, Scale};
use pmacc_bench::pool::{run_jobs, Job, Options};
use pmacc_bench::report;
use pmacc_types::SimError;

/// Every digit of every statistic, not just the headline metrics: the
/// `Debug` rendering covers all public fields of every report.
fn fingerprint(grid: &pmacc_bench::GridResults) -> String {
    format!("{:?}", grid.results)
}

#[test]
fn quick_grid_is_bit_identical_at_jobs_1_and_jobs_4() {
    let serial = run_grid_opts(
        Scale::Quick,
        42,
        &RunConfig::default(),
        &Options {
            jobs: 1,
            progress: false,
        },
    )
    .expect("serial grid runs");
    let parallel = run_grid_opts(
        Scale::Quick,
        42,
        &RunConfig::default(),
        &Options {
            jobs: 4,
            progress: false,
        },
    )
    .expect("parallel grid runs");
    assert_eq!(
        fingerprint(&serial),
        fingerprint(&parallel),
        "a 4-worker grid diverged from the serial baseline at the same seed"
    );
    // The machine-readable document must be byte-identical too — it is
    // what the regression gate and external plotting consume, so any
    // worker-count dependence (map ordering, float formatting) would
    // poison checked-in baselines.
    let json_serial = report::full_report(Scale::Quick, 42, Some(&serial), &[]).to_pretty();
    let json_parallel = report::full_report(Scale::Quick, 42, Some(&parallel), &[]).to_pretty();
    assert_eq!(
        json_serial, json_parallel,
        "reproduce --json output depends on the worker count"
    );
}

#[test]
fn pool_preserves_submission_order_with_unequal_job_durations() {
    // The first-submitted jobs sleep longest, so with 4 workers the
    // completion order is roughly the reverse of submission order; the
    // returned Vec must still be in submission order.
    let jobs: Vec<Job<usize>> = (0..8)
        .map(|i| {
            Job::new(format!("sleepy {i}"), move || {
                std::thread::sleep(std::time::Duration::from_millis((8 - i) as u64 * 15));
                i
            })
        })
        .collect();
    let out = run_jobs(jobs, 4, false).expect("no panics");
    assert_eq!(out, (0..8).collect::<Vec<_>>());
}

#[test]
fn pool_panic_names_the_offending_cell() {
    let jobs: Vec<Job<Result<u64, SimError>>> = vec![
        Job::new("rbtree/tc", || Ok(1)),
        Job::new("sps/nvllc seed 42", || {
            panic!("deadlock at cycle 1234")
        }),
        Job::new("btree/sp", || Ok(3)),
    ];
    let err = run_jobs(jobs, 4, false).expect_err("the panic must surface");
    assert_eq!(err.label, "sps/nvllc seed 42");
    assert!(
        err.message.contains("deadlock at cycle 1234"),
        "panic payload lost: {}",
        err.message
    );
}

#[test]
fn pool_panic_does_not_lose_the_batch_silently() {
    // A panicking cell in the middle must not let the caller observe a
    // truncated-but-Ok result vector.
    let jobs: Vec<Job<u8>> = (0..8)
        .map(|i| {
            Job::new(format!("cell {i}"), move || {
                assert!(i != 3, "cell 3 is broken");
                i
            })
        })
        .collect();
    assert!(run_jobs(jobs, 2, false).is_err());
}
