//! Cross-crate behavioural tests of the full system.

use pmacc::{RunConfig, System};
use pmacc_cpu::{Op, Trace};
use pmacc_types::{layout, MachineConfig, SchemeKind, WriteCause};
use pmacc_workloads::{build, WorkloadKind, WorkloadParams};

fn machine(scheme: SchemeKind) -> MachineConfig {
    MachineConfig::small().with_scheme(scheme)
}

fn run(scheme: SchemeKind, kind: WorkloadKind, seed: u64) -> pmacc::RunReport {
    let mut sys = System::for_workload(
        machine(scheme),
        kind,
        &WorkloadParams::tiny(seed),
        &RunConfig::default(),
    )
    .expect("system builds");
    sys.run().expect("runs to completion")
}

#[test]
fn every_scheme_commits_every_transaction() {
    for kind in WorkloadKind::all() {
        for scheme in SchemeKind::all() {
            let r = run(scheme, kind, 21);
            assert_eq!(
                r.total_committed(),
                100,
                "{scheme}/{kind}: 50 ops x 2 cores"
            );
        }
    }
}

#[test]
fn runs_are_deterministic() {
    for scheme in SchemeKind::all() {
        let a = run(scheme, WorkloadKind::Btree, 5);
        let b = run(scheme, WorkloadKind::Btree, 5);
        assert_eq!(a.cycles, b.cycles, "{scheme} cycles must be reproducible");
        assert_eq!(a.nvm.writes(), b.nvm.writes());
        assert_eq!(a.hierarchy.llc.accesses.total(), b.hierarchy.llc.accesses.total());
    }
}

#[test]
fn optimal_never_pays_persistence_costs() {
    let r = run(SchemeKind::Optimal, WorkloadKind::Rbtree, 9);
    assert_eq!(r.nvm_writes_by(WriteCause::Log), 0);
    assert_eq!(r.nvm_writes_by(WriteCause::Flush), 0);
    assert_eq!(r.nvm_writes_by(WriteCause::TxCacheDrain), 0);
    assert_eq!(r.nvm_writes_by(WriteCause::Cow), 0);
    assert_eq!(r.dropped_llc_writes, 0);
}

#[test]
fn tc_drains_exactly_the_transactional_stores() {
    // Without coalescing, each persistent store inside a transaction
    // produces exactly one transaction-cache drain write.
    let w = build(WorkloadKind::Sps, &WorkloadParams::tiny(2));
    let stores = w.trace.ops().iter().filter(|o| o.is_store()).count() as u64;
    let r = run(SchemeKind::TxCache, WorkloadKind::Sps, 2);
    // Two cores, identical op counts (different seeds give the same
    // number of swap stores: 2 per transaction).
    assert_eq!(
        r.nvm_writes_by(WriteCause::TxCacheDrain)
            + r.nvm.coalesced_writes.value(),
        stores * 2,
        "every buffered store drains exactly once (or coalesces in the WQ)"
    );
    assert_eq!(r.nvm_writes_by(WriteCause::Eviction), 0, "evictions dropped");
}

#[test]
fn scheme_performance_ordering_holds() {
    // The fundamental shape of Figures 6/7: SP is the slowest persistent
    // scheme and TC the fastest; nobody beats Optimal.
    for kind in [WorkloadKind::Sps, WorkloadKind::Btree] {
        let opt = run(SchemeKind::Optimal, kind, 33).cycles;
        let sp = run(SchemeKind::Sp, kind, 33).cycles;
        let tc = run(SchemeKind::TxCache, kind, 33).cycles;
        assert!(opt <= tc, "{kind}: optimal at least as fast as TC");
        assert!(tc < sp, "{kind}: TC must beat software logging");
    }
}

#[test]
fn functional_state_matches_workload_ground_truth() {
    // After a TC run quiesces, the NVM image must hold the workload's
    // final persistent values (striped to core slices).
    let params = WorkloadParams::tiny(8);
    let cfg = machine(SchemeKind::TxCache);
    let mut sys = System::for_workload(cfg, WorkloadKind::Hashtable, &params, &RunConfig::default())
        .unwrap();
    sys.run().unwrap();
    let state = sys.crash_state();
    let recovered = pmacc::recovery::recover(&state);
    // Core 0 runs its own derived stream of the base seed, unstrided
    // addresses — rebuild the same stream for the ground-truth image.
    let mut p0 = params;
    p0.seed = pmacc_types::rng::stream_seed(params.seed, 0);
    let w = build(WorkloadKind::Hashtable, &p0);
    for (word, value) in w.final_image.iter() {
        if word.is_persistent() {
            assert_eq!(
                recovered.read_word(*word),
                *value,
                "word {word} of core 0's final image"
            );
        }
    }
}

#[test]
fn sp_log_lives_in_its_own_area() {
    let r = run(SchemeKind::Sp, WorkloadKind::Graph, 4);
    assert!(r.nvm_writes_by(WriteCause::Flush) > 0, "log flush traffic exists");
    // And the log area boundaries hold: instrumented traces only touch
    // the owning core's area.
    let raw = build(WorkloadKind::Graph, &WorkloadParams::tiny(4));
    let t = pmacc::scheme::instrument(SchemeKind::Sp, 1, &raw.trace);
    for op in t.ops() {
        if let Op::LogStore { addr, .. } = op {
            let base = layout::log_area_base(1).raw();
            assert!(
                addr.raw() >= base && addr.raw() < base + layout::LOG_AREA_BYTES_PER_CORE,
                "log record outside core 1's area"
            );
        }
    }
}

#[test]
fn raw_trace_api_accepts_custom_programs() {
    // The public System::new path with a hand-built trace.
    let base = layout::persistent_heap_base();
    let mut t = Trace::new();
    t.push(Op::TxBegin);
    t.push(Op::store(base, 1));
    t.push(Op::store(base.offset(8), 2));
    t.push(Op::TxEnd);
    t.push(Op::load(base));
    let cfg = machine(SchemeKind::TxCache);
    let traces = vec![t; cfg.cores];
    let mut sys = System::new(cfg, traces, &[], &RunConfig::default()).unwrap();
    let r = sys.run().unwrap();
    assert_eq!(r.total_committed(), 2);
}

#[test]
fn tiny_txcache_shows_pressure_and_big_one_does_not() {
    // §5.2 / ablation A in miniature: a 2-entry TC must reject or
    // overflow under rbtree inserts; a large one must not.
    let run_with = |entries: u64| {
        let mut cfg = machine(SchemeKind::TxCache);
        cfg.txcache.size_bytes = entries * 64;
        let mut sys = System::for_workload(
            cfg,
            WorkloadKind::Rbtree,
            &WorkloadParams::tiny(6),
            &RunConfig::default(),
        )
        .unwrap();
        let r = sys.run().unwrap();
        (
            r.tc.iter().map(|t| t.full_rejections.value()).sum::<u64>() + r.tc_overflows(),
            r.total_committed(),
        )
    };
    let (tiny_pressure, tiny_committed) = run_with(2);
    let (big_pressure, big_committed) = run_with(256);
    assert!(tiny_pressure > 0, "a 2-entry TC must overflow or stall");
    assert_eq!(big_pressure, 0, "a 16 KB TC absorbs every transaction");
    assert_eq!(tiny_committed, big_committed, "pressure never loses txs");
}
