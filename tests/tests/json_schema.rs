//! Pins the shape of the machine-readable run report.
//!
//! External consumers — plotting scripts, the `regress` gate's
//! baselines, anything parsing `reproduce --json` — key into the
//! document by path. This snapshot walks every object key reachable
//! from a real (tiny) run's [`pmacc::RunReport`] JSON and compares the
//! sorted path list against a checked-in expectation, so renaming or
//! dropping a field is a deliberate, reviewed act: update `EXPECTED`
//! here *and* bump the consumers.
//!
//! Arrays are traversed through their first element (spelled `[]` in a
//! path); keys that vary per run (none today) must not be added.

use pmacc::{RunConfig, System};
use pmacc_telemetry::{Json, ToJson};
use pmacc_types::MachineConfig;
use pmacc_workloads::{WorkloadKind, WorkloadParams};

/// Every object key reachable from `j`, depth-first, as `a.b[].c`
/// paths.
fn key_paths(j: &Json, prefix: &str, out: &mut Vec<String>) {
    match j {
        Json::Obj(pairs) => {
            for (k, v) in pairs {
                let path = if prefix.is_empty() {
                    k.clone()
                } else {
                    format!("{prefix}.{k}")
                };
                out.push(path.clone());
                key_paths(v, &path, out);
            }
        }
        Json::Arr(items) => {
            if let Some(first) = items.first() {
                key_paths(first, &format!("{prefix}[]"), out);
            }
        }
        _ => {}
    }
}

fn tiny_report_json() -> Json {
    let mut machine = MachineConfig::small();
    machine.cores = 2;
    let mut params = WorkloadParams::tiny(7);
    params.num_ops = 200;
    let run_cfg = RunConfig {
        // Small enough that even this tiny run records samples, so the
        // series schema is exercised.
        sample_period: 64,
        ..RunConfig::default()
    };
    let mut sys = System::for_workload(machine, WorkloadKind::Sps, &params, &run_cfg)
        .expect("tiny system builds");
    sys.run().expect("tiny run completes").to_json()
}

/// The full sorted key-path inventory of a `RunReport` document. When a
/// change here is intentional, regenerate by running this test and
/// copying the printed inventory.
const EXPECTED: &str = "\
cores
cores[].conflict_overrides
cores[].cycles
cores[].ipc
cores[].load_latency
cores[].load_latency.buckets
cores[].load_latency.count
cores[].load_latency.max
cores[].load_latency.mean
cores[].load_latency.p50
cores[].load_latency.p99
cores[].load_latency.sum
cores[].loads
cores[].ops
cores[].persistent_load_latency
cores[].persistent_load_latency.buckets
cores[].persistent_load_latency.count
cores[].persistent_load_latency.max
cores[].persistent_load_latency.mean
cores[].persistent_load_latency.p50
cores[].persistent_load_latency.p99
cores[].persistent_load_latency.sum
cores[].stall_cycles
cores[].stall_cycles.commit-flush
cores[].stall_cycles.conflict
cores[].stall_cycles.fence
cores[].stall_cycles.load
cores[].stall_cycles.pin-blocked
cores[].stall_cycles.store-buffer-full
cores[].stall_cycles.txcache-full
cores[].stall_fractions
cores[].stall_fractions.commit-flush
cores[].stall_fractions.conflict
cores[].stall_fractions.fence
cores[].stall_fractions.load
cores[].stall_fractions.pin-blocked
cores[].stall_fractions.store-buffer-full
cores[].stall_fractions.txcache-full
cores[].stores
cores[].tx_committed
cores[].tx_conflicts
cores[].tx_throughput
cycles
dram
dram.coalesced_writes
dram.drain_issues
dram.endurance
dram.endurance.gap_rotations
dram.endurance.histogram
dram.endurance.histogram.buckets
dram.endurance.histogram.count
dram.endurance.histogram.max
dram.endurance.histogram.mean
dram.endurance.histogram.sum
dram.endurance.hottest_line
dram.endurance.hottest_line_writes
dram.endurance.imbalance
dram.endurance.lines
dram.endurance.lines_written
dram.endurance.max_writes_per_line
dram.endurance.mean_writes_per_line
dram.endurance.p99_writes_per_line
dram.endurance.relocation_writes
dram.read_latency
dram.read_latency.buckets
dram.read_latency.count
dram.read_latency.max
dram.read_latency.mean
dram.read_latency.p50
dram.read_latency.p99
dram.read_latency.sum
dram.reads
dram.rejected
dram.row_hits
dram.row_hits.fraction
dram.row_hits.hits
dram.row_hits.total
dram.write_latency
dram.write_latency.buckets
dram.write_latency.count
dram.write_latency.max
dram.write_latency.mean
dram.write_latency.p50
dram.write_latency.p99
dram.write_latency.sum
dram.writes
dram.writes_by_cause
dram.writes_by_cause.cow
dram.writes_by_cause.eviction
dram.writes_by_cause.flush
dram.writes_by_cause.log
dram.writes_by_cause.recovery
dram.writes_by_cause.tc-drain
dropped_llc_writes
engine
engine.events_processed
engine.idle_cycles_skipped
engine.wakes_coalesced
engine.wakes_scheduled
hierarchy
hierarchy.coherence
hierarchy.coherence.back_invalidations
hierarchy.coherence.bus_upgrades
hierarchy.coherence.dirty_persistent_invalidations
hierarchy.coherence.downgrades
hierarchy.coherence.interventions
hierarchy.coherence.remote_invalidations
hierarchy.coherence.shared_fills
hierarchy.l1
hierarchy.l1[].accesses
hierarchy.l1[].accesses.fraction
hierarchy.l1[].accesses.hits
hierarchy.l1[].accesses.total
hierarchy.l1[].dirty_evictions
hierarchy.l1[].evictions
hierarchy.l1[].forced_unpins
hierarchy.l1[].miss_rate
hierarchy.l1[].persistent_dirty_evictions
hierarchy.l1[].pin_blocked
hierarchy.l2
hierarchy.l2[].accesses
hierarchy.l2[].accesses.fraction
hierarchy.l2[].accesses.hits
hierarchy.l2[].accesses.total
hierarchy.l2[].dirty_evictions
hierarchy.l2[].evictions
hierarchy.l2[].forced_unpins
hierarchy.l2[].miss_rate
hierarchy.l2[].persistent_dirty_evictions
hierarchy.l2[].pin_blocked
hierarchy.llc
hierarchy.llc.accesses
hierarchy.llc.accesses.fraction
hierarchy.llc.accesses.hits
hierarchy.llc.accesses.total
hierarchy.llc.dirty_evictions
hierarchy.llc.evictions
hierarchy.llc.forced_unpins
hierarchy.llc.miss_rate
hierarchy.llc.persistent_dirty_evictions
hierarchy.llc.pin_blocked
ipc
llc_miss_rate
nvm
nvm.coalesced_writes
nvm.drain_issues
nvm.endurance
nvm.endurance.gap_rotations
nvm.endurance.histogram
nvm.endurance.histogram.buckets
nvm.endurance.histogram.count
nvm.endurance.histogram.max
nvm.endurance.histogram.mean
nvm.endurance.histogram.sum
nvm.endurance.hottest_line
nvm.endurance.hottest_line_writes
nvm.endurance.imbalance
nvm.endurance.lines
nvm.endurance.lines_written
nvm.endurance.max_writes_per_line
nvm.endurance.mean_writes_per_line
nvm.endurance.p99_writes_per_line
nvm.endurance.relocation_writes
nvm.read_latency
nvm.read_latency.buckets
nvm.read_latency.count
nvm.read_latency.max
nvm.read_latency.mean
nvm.read_latency.p50
nvm.read_latency.p99
nvm.read_latency.sum
nvm.reads
nvm.rejected
nvm.row_hits
nvm.row_hits.fraction
nvm.row_hits.hits
nvm.row_hits.total
nvm.write_latency
nvm.write_latency.buckets
nvm.write_latency.count
nvm.write_latency.max
nvm.write_latency.mean
nvm.write_latency.p50
nvm.write_latency.p99
nvm.write_latency.sum
nvm.writes
nvm.writes_by_cause
nvm.writes_by_cause.cow
nvm.writes_by_cause.eviction
nvm.writes_by_cause.flush
nvm.writes_by_cause.log
nvm.writes_by_cause.recovery
nvm.writes_by_cause.tc-drain
nvm_completed_writes
nvm_write_traffic
persistent_load_latency_mean
residual_nvm_lines
scheme
series
series.channels
series.dropped
series.period
series.samples
stall_fractions
stall_fractions.commit-flush
stall_fractions.conflict
stall_fractions.fence
stall_fractions.load
stall_fractions.pin-blocked
stall_fractions.store-buffer-full
stall_fractions.txcache-full
tc
tc[].acks
tc[].coalesced
tc[].commits
tc[].full_rejections
tc[].high_water
tc[].inserts
tc[].overflows
tc[].probe_hits
tc[].probe_misses
tc[].remote_invalidations
tc_overflows
throughput
tx_committed";

#[test]
fn run_report_schema_is_stable() {
    let mut paths = Vec::new();
    key_paths(&tiny_report_json(), "", &mut paths);
    paths.sort();
    paths.dedup();
    let actual = paths.join("\n");
    assert_eq!(
        actual, EXPECTED,
        "RunReport JSON schema changed; if intentional, replace EXPECTED with:\n{actual}\n"
    );
}

#[test]
fn headline_metrics_are_numbers() {
    let j = tiny_report_json();
    for key in ["ipc", "throughput", "llc_miss_rate", "persistent_load_latency_mean"] {
        let v = j.get(key).and_then(Json::as_f64);
        assert!(
            v.is_some_and(f64::is_finite),
            "`{key}` should be a finite number, got {:?}",
            j.get(key)
        );
    }
    assert!(
        !j.get("series")
            .and_then(|s| s.get("samples"))
            .and_then(Json::as_arr)
            .expect("series.samples is an array")
            .is_empty(),
        "a 64-cycle sample period must record samples"
    );
}
