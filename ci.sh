#!/usr/bin/env bash
# Tier-1 verification in one command, fully offline.
#
# The workspace has zero external dependencies, so every step below must
# succeed without registry or network access; --offline makes any
# accidental reintroduction of an external crate fail loudly here.
#
# Knobs (all optional):
#   PMACC_PROP_CASES=N   property-test cases per property (default 64)
#   PMACC_FUZZ_CASES=N   crash-recovery fuzz cases (default 24)
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release --offline"
cargo build --release --offline

echo "==> cargo test -q --offline"
cargo test -q --offline

echo "==> cargo clippy --all-targets --offline -- -D warnings"
cargo clippy --all-targets --offline -- -D warnings

echo "==> RUSTDOCFLAGS=-D warnings cargo doc --no-deps --offline"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --offline

# Smoke-run the component microbench suite at one sample per benchmark:
# this is a bit-rot gate (the targets must build and their setup code
# must still hold), not a measurement — real numbers come from
# `cargo bench -p pmacc-bench --bench hotpath` on an idle machine.
echo "==> microbench smoke run (PMACC_BENCH_SAMPLES=1)"
PMACC_BENCH_SAMPLES=1 PMACC_JOBS=1 cargo bench --offline -q -p pmacc-bench \
    --bench hotpath > /dev/null
PMACC_BENCH_SAMPLES=1 PMACC_JOBS=1 cargo bench --offline -q -p pmacc-bench \
    --bench components > /dev/null

# Smoke-run the parallel experiment path end to end: a quick-scale grid
# fanned out over the pool (PMACC_JOBS=4 exercises the multi-worker code
# even on small CI boxes) rendered to one figure, plus the JSON emitter.
echo "==> reproduce --quick fig6 (parallel smoke run, 4 workers)"
smoke_json="$(mktemp)"
PMACC_JOBS=4 cargo run --release --offline -q -p pmacc-bench --bin reproduce -- \
    --quick fig6 --json "$smoke_json" > /dev/null
test -s "$smoke_json" || { echo "reproduce --json wrote nothing" >&2; exit 1; }
rm -f "$smoke_json"

# Calibration regression gate: a fresh quick-scale grid's key metrics
# (normalized figure means, per-cell IPC, stall fractions, NVM writes by
# cause) must match baselines/metrics-quick.json within each metric's
# relative tolerance. The same run's metrics are published as
# BENCH_pmacc.json for cross-commit trend tracking. A PR that changes
# calibration *on purpose* refreshes the baseline
# (`regress --write-baseline`, commit the result) — or sets
# PMACC_SKIP_REGRESS=1 while iterating.
if [[ "${PMACC_SKIP_REGRESS:-0}" == "1" ]]; then
    echo "==> regress skipped (PMACC_SKIP_REGRESS=1)"
else
    echo "==> regress --quick (calibration gate, 4 workers)"
    PMACC_JOBS=4 cargo run --release --offline -q -p pmacc-bench --bin regress -- \
        --quick --json BENCH_pmacc.json
fi

# Crash-campaign gate: a quick-scale fault-injection sweep (every scheme
# × workload × {1,2} cores plus the COW-overflow cell, hundreds of
# boundary-clustered crash points per cell) must record zero oracle
# violations in persistent-scheme cells; the report is then re-read with
# --verify to prove the artifact itself parses and validates. Opt out
# with PMACC_SKIP_CRASHGRID=1 while iterating on recovery code.
if [[ "${PMACC_SKIP_CRASHGRID:-0}" == "1" ]]; then
    echo "==> crashgrid skipped (PMACC_SKIP_CRASHGRID=1)"
else
    echo "==> crashgrid --quick (crash-consistency campaign, 4 workers)"
    crashgrid_json="$(mktemp)"
    cargo run --release --offline -q -p pmacc-bench --bin crashgrid -- \
        --quick --jobs 4 --json "$crashgrid_json"
    cargo run --release --offline -q -p pmacc-bench --bin crashgrid -- \
        --verify "$crashgrid_json"
    rm -f "$crashgrid_json"
fi

# Service-benchmark gate: the quick-scale open-system campaign (every
# scheme calibrated closed-loop, then rate-ramped into saturation as a
# KV server under Poisson arrivals) must emit a byte-identical
# pmacc-serve-v1 report at --jobs 1 and --jobs 4, and that report must
# match the checked-in baselines/serve-quick.json bit for bit. A PR
# that changes timing or the campaign shape on purpose regenerates the
# baseline (`serve --quick --json baselines/serve-quick.json`, commit
# the result) — or sets PMACC_SKIP_SERVE=1 while iterating.
if [[ "${PMACC_SKIP_SERVE:-0}" == "1" ]]; then
    echo "==> serve skipped (PMACC_SKIP_SERVE=1)"
else
    echo "==> serve --quick (open-system service benchmark, jobs 1 vs 4)"
    serve_one="$(mktemp)"
    serve_four="$(mktemp)"
    cargo run --release --offline -q -p pmacc-bench --bin serve -- \
        --quick --jobs 1 --json "$serve_one" > /dev/null
    cargo run --release --offline -q -p pmacc-bench --bin serve -- \
        --quick --jobs 4 --json "$serve_four" > /dev/null
    cmp "$serve_one" "$serve_four" \
        || { echo "serve report differs between --jobs 1 and --jobs 4" >&2; exit 1; }
    cmp "$serve_four" baselines/serve-quick.json \
        || { echo "serve report drifted from baselines/serve-quick.json" >&2; exit 1; }
    cargo run --release --offline -q -p pmacc-bench --bin serve -- \
        --verify baselines/serve-quick.json
    rm -f "$serve_one" "$serve_four"
fi

# Sharing-sweep gate: the quick-scale cross-core sharing experiment
# (workload × sharing-fraction × scheme, MESI coherence traffic and
# conflict counters, plus the 16-core directory-stress cells that keep
# the LLC sharer-bitmap honest at high core counts) must emit a
# byte-identical JSON report at --jobs 1 and --jobs 4, and that report
# must match the checked-in baselines/sharing-quick.json bit for bit —
# which also pins the coherence layer inert at fraction 0 (those rows
# reproduce the private per-scheme numbers exactly). A PR that changes coherence or timing on
# purpose regenerates the baseline (`reproduce --quick sharing --json
# baselines/sharing-quick.json`, commit the result) — or sets
# PMACC_SKIP_SHARING=1 while iterating.
if [[ "${PMACC_SKIP_SHARING:-0}" == "1" ]]; then
    echo "==> sharing skipped (PMACC_SKIP_SHARING=1)"
else
    echo "==> reproduce --quick sharing (coherence sweep, jobs 1 vs 4)"
    sharing_one="$(mktemp)"
    sharing_four="$(mktemp)"
    PMACC_JOBS=1 cargo run --release --offline -q -p pmacc-bench --bin reproduce -- \
        --quick sharing --json "$sharing_one" > /dev/null
    PMACC_JOBS=4 cargo run --release --offline -q -p pmacc-bench --bin reproduce -- \
        --quick sharing --json "$sharing_four" > /dev/null
    cmp "$sharing_one" "$sharing_four" \
        || { echo "sharing report differs between --jobs 1 and --jobs 4" >&2; exit 1; }
    cmp "$sharing_four" baselines/sharing-quick.json \
        || { echo "sharing report drifted from baselines/sharing-quick.json" >&2; exit 1; }
    rm -f "$sharing_one" "$sharing_four"
fi

# Wear-sweep gate: the quick-scale endurance experiment (workload ×
# scheme × wear-leveling on/off, per-line wear histograms, start-gap
# rotation counters and both lifetime projections) must emit a
# byte-identical JSON report at --jobs 1 and --jobs 4, and that report
# must match the checked-in baselines/wear-quick.json bit for bit —
# which also pins the leveling-off rows to the unremapped memory path
# (those rows must reproduce the plain per-scheme wear profile
# exactly). A PR that changes wear modeling or timing on purpose
# regenerates the baseline (`reproduce --quick wear --json
# baselines/wear-quick.json`, commit the result) — or sets
# PMACC_SKIP_WEAR=1 while iterating.
if [[ "${PMACC_SKIP_WEAR:-0}" == "1" ]]; then
    echo "==> wear skipped (PMACC_SKIP_WEAR=1)"
else
    echo "==> reproduce --quick wear (endurance sweep, jobs 1 vs 4)"
    wear_one="$(mktemp)"
    wear_four="$(mktemp)"
    PMACC_JOBS=1 cargo run --release --offline -q -p pmacc-bench --bin reproduce -- \
        --quick wear --json "$wear_one" > /dev/null
    PMACC_JOBS=4 cargo run --release --offline -q -p pmacc-bench --bin reproduce -- \
        --quick wear --json "$wear_four" > /dev/null
    cmp "$wear_one" "$wear_four" \
        || { echo "wear report differs between --jobs 1 and --jobs 4" >&2; exit 1; }
    cmp "$wear_four" baselines/wear-quick.json \
        || { echo "wear report drifted from baselines/wear-quick.json" >&2; exit 1; }
    rm -f "$wear_one" "$wear_four"
fi

echo "==> ci.sh: all green"
