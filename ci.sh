#!/usr/bin/env bash
# Tier-1 verification in one command, fully offline.
#
# The workspace has zero external dependencies, so every step below must
# succeed without registry or network access; --offline makes any
# accidental reintroduction of an external crate fail loudly here.
#
# Knobs (all optional):
#   PMACC_PROP_CASES=N   property-test cases per property (default 64)
#   PMACC_FUZZ_CASES=N   crash-recovery fuzz cases (default 24)
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release --offline"
cargo build --release --offline

echo "==> cargo test -q --offline"
cargo test -q --offline

echo "==> cargo clippy --all-targets --offline -- -D warnings"
cargo clippy --all-targets --offline -- -D warnings

echo "==> RUSTDOCFLAGS=-D warnings cargo doc --no-deps --offline"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --offline

# Smoke-run the parallel experiment path end to end: a quick-scale grid
# fanned out over the pool (PMACC_JOBS=4 exercises the multi-worker code
# even on small CI boxes) rendered to one figure.
echo "==> reproduce --quick fig6 (parallel smoke run, 4 workers)"
PMACC_JOBS=4 cargo run --release --offline -q -p pmacc-bench --bin reproduce -- --quick fig6 > /dev/null

echo "==> ci.sh: all green"
